module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Validate = Pr_policy.Validate
module Source_policy = Pr_policy.Source_policy
module Config = Pr_policy.Config
module Metrics = Pr_sim.Metrics
module Forwarding = Pr_proto.Forwarding
module Packet = Pr_proto.Packet
module Runner = Pr_proto.Runner
module Stats = Pr_util.Stats
module Texttable = Pr_util.Texttable

let oracle_max_hops = 12

type result = {
  protocol : string;
  scenario : string;
  converged : bool;
  convergence_time : float;
  reconvergence_time : float option;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  table_total : int;
  table_max : int;
  flows : int;
  oracle_reachable : int;
  delivered : int;
  dropped : int;
  looped : int;
  prep_failed : int;
  availability_loss : int;
  transit_violations : int;
  source_violations : int;
  stretch_mean : float;
  header_bytes_mean : float;
  setup_hops_mean : float;
  cache_hits : int;
}

type outcome_tally = {
  mutable delivered : int;
  mutable dropped : int;
  mutable looped : int;
  mutable prep_failed : int;
  mutable oracle_reachable : int;
  mutable availability_loss : int;
  mutable transit_violations : int;
  mutable source_violations : int;
  mutable cache_hits : int;
  mutable stretches : float list;
  mutable headers : float list;
  mutable setups : float list;
}

let fresh_tally () =
  {
    delivered = 0;
    dropped = 0;
    looped = 0;
    prep_failed = 0;
    oracle_reachable = 0;
    availability_loss = 0;
    transit_violations = 0;
    source_violations = 0;
    cache_hits = 0;
    stretches = [];
    headers = [];
    setups = [];
  }

let classify (scenario : Scenario.t) tally flow outcome =
  let g = scenario.Scenario.graph and config = scenario.Scenario.config in
  (* [best] is a route that is both transit-legal and acceptable to the
     source's own criteria: only its absence from a protocol counts as
     availability loss. A flow whose source policy refuses every legal
     route is not "lost" — refusing it is correct behaviour (protocols
     that deliver it anyway score a source violation instead). *)
  let best = Validate.best_legal g config flow ~max_hops:oracle_max_hops in
  let reachable =
    best <> None || Validate.route_exists g config flow ~max_hops:oracle_max_hops
  in
  if reachable then tally.oracle_reachable <- tally.oracle_reachable + 1;
  let reachable = best <> None in
  let prep =
    match outcome with
    | Forwarding.Delivered { prep; _ }
    | Forwarding.Dropped { prep; _ }
    | Forwarding.Looped { prep; _ }
    | Forwarding.Prep_failed { prep; _ } -> prep
  in
  if prep.Packet.cache_hit then tally.cache_hits <- tally.cache_hits + 1
  else if prep.Packet.setup_hops > 0 then
    tally.setups <- float_of_int prep.Packet.setup_hops :: tally.setups;
  match outcome with
  | Forwarding.Delivered { path; header_bytes; _ } ->
    tally.delivered <- tally.delivered + 1;
    tally.headers <- float_of_int header_bytes :: tally.headers;
    if not (Validate.transit_legal g config flow path) then
      tally.transit_violations <- tally.transit_violations + 1;
    if not (Source_policy.permits (Config.source config flow.Flow.src) path) then
      tally.source_violations <- tally.source_violations + 1;
    (match (Path.cost g path, best) with
    | Some actual, Some best_path -> (
      match Path.cost g best_path with
      | Some best_cost when best_cost > 0 ->
        tally.stretches <-
          (float_of_int actual /. float_of_int best_cost) :: tally.stretches
      | _ -> ())
    | _ -> ())
  | Forwarding.Dropped _ ->
    tally.dropped <- tally.dropped + 1;
    if reachable then tally.availability_loss <- tally.availability_loss + 1
  | Forwarding.Looped _ ->
    tally.looped <- tally.looped + 1;
    if reachable then tally.availability_loss <- tally.availability_loss + 1
  | Forwarding.Prep_failed _ ->
    tally.prep_failed <- tally.prep_failed + 1;
    if reachable then tally.availability_loss <- tally.availability_loss + 1

let evaluate (Registry.Packed (module P)) (scenario : Scenario.t) ?fail_link ~flows () =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  let conv = R.converge r in
  let reconv =
    match fail_link with
    | None -> None
    | Some lid ->
      R.fail_link r lid;
      Some (R.converge r)
  in
  let tally = fresh_tally () in
  (* For availability accounting after a failure the oracle must see
     the failed topology: rebuild the scenario graph without the link
     by consulting the network's live state through outcomes instead —
     we keep the static graph and accept that a failed link makes the
     oracle slightly optimistic; experiments that need exactness avoid
     the fail_link path of this driver. *)
  List.iter
    (fun flow ->
      let outcome = R.send_flow r flow in
      classify scenario tally flow outcome)
    flows;
  let metrics = R.metrics r in
  let g = scenario.Scenario.graph in
  let transit_comp =
    List.fold_left
      (fun acc ad -> acc + Metrics.computations_of metrics ad)
      0 (Graph.transit_ids g)
  in
  {
    protocol = P.name;
    scenario = scenario.Scenario.label;
    converged =
      (conv.Runner.converged
      &&
      match reconv with
      | None -> true
      | Some c -> c.Runner.converged);
    convergence_time = conv.Runner.sim_time;
    reconvergence_time =
      Option.map (fun c -> c.Runner.sim_time -. conv.Runner.sim_time) reconv;
    messages = Metrics.messages metrics;
    bytes = Metrics.bytes metrics;
    computations = Metrics.computations metrics;
    transit_computations = transit_comp;
    table_total = R.table_entries r;
    table_max = R.max_table_entries r;
    flows = List.length flows;
    oracle_reachable = tally.oracle_reachable;
    delivered = tally.delivered;
    dropped = tally.dropped;
    looped = tally.looped;
    prep_failed = tally.prep_failed;
    availability_loss = tally.availability_loss;
    transit_violations = tally.transit_violations;
    source_violations = tally.source_violations;
    stretch_mean = Stats.mean tally.stretches;
    header_bytes_mean = Stats.mean tally.headers;
    setup_hops_mean = Stats.mean tally.setups;
    cache_hits = tally.cache_hits;
  }

type convergence_probe = {
  initial_time : float;
  initial_messages : int;
  initial_bytes : int;
  after_failure_time : float;
  after_failure_messages : int;
  after_failure_converged : bool;
}

let convergence_after_failure (Registry.Packed (module P)) (scenario : Scenario.t) ~link =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  let initial = R.converge r in
  R.fail_link r link;
  let after = R.converge ~max_events:2_000_000 r in
  {
    initial_time = initial.Runner.sim_time;
    initial_messages = initial.Runner.messages;
    initial_bytes = initial.Runner.bytes;
    after_failure_time = after.Runner.sim_time -. initial.Runner.sim_time;
    after_failure_messages = after.Runner.messages;
    after_failure_converged = after.Runner.converged;
  }

let availability (Registry.Packed (module P)) (scenario : Scenario.t) ~flows ~delivered =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  ignore (R.converge r);
  List.filter
    (fun flow -> Forwarding.delivered (R.send_flow r flow) = delivered)
    flows

let result_columns =
  [
    ("protocol", Texttable.Left);
    ("conv t", Texttable.Right);
    ("msgs", Texttable.Right);
    ("kbytes", Texttable.Right);
    ("comp", Texttable.Right);
    ("tbl max", Texttable.Right);
    ("deliv", Texttable.Right);
    ("avail loss", Texttable.Right);
    ("viol", Texttable.Right);
    ("src viol", Texttable.Right);
    ("stretch", Texttable.Right);
  ]

let result_row r =
  [
    r.protocol;
    Texttable.cell_float ~decimals:1 r.convergence_time;
    Texttable.cell_int r.messages;
    Texttable.cell_float ~decimals:1 (float_of_int r.bytes /. 1024.);
    Texttable.cell_int r.computations;
    Texttable.cell_int r.table_max;
    Printf.sprintf "%d/%d" r.delivered r.flows;
    Printf.sprintf "%d/%d" r.availability_loss r.oracle_reachable;
    Texttable.cell_int r.transit_violations;
    Texttable.cell_int r.source_violations;
    Texttable.cell_float ~decimals:2 r.stretch_mean;
  ]

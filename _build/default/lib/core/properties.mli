(** Protocol conformance properties.

    Behavioural invariants every routing protocol in the registry is
    expected to satisfy on any scenario, packaged so the test suite can
    sweep (protocol × scenario × seed). Each check returns [Ok ()] or
    [Error reason]; they are deliberately protocol-agnostic, using only
    the {!Pr_proto.Protocol_intf.PROTOCOL} surface and the policy
    oracle. *)

type check = Registry.packed -> Scenario.t -> (unit, string) result

val converges : check
(** The event queue drains from a cold start. *)

val converge_idempotent : check
(** A second converge after quiescence sends no further messages —
    event-driven protocols must not chatter at steady state. *)

val deterministic : check
(** Two cold runs produce identical convergence metrics and identical
    outcomes for a probe workload. *)

val outcomes_partition : check
(** Delivered + dropped + looped + prep-failed = flows sent. *)

val delivered_paths_valid : check
(** Every delivered path is a valid simple path of the topology from
    the flow's source to its destination. *)

val state_gauges_sane : check
(** Table-entry gauges are non-negative and the per-AD maximum is at
    most the total. *)

val survives_fail_restore : check
(** After failing and restoring a link (reconverging after each), the
    set of delivered probe flows equals the initial one. EGP is exempt
    — its silent stable loops after churn are documented behaviour —
    so the sweep in the test suite skips it there. *)

val all : (string * check) list
(** Every check above with a short name, [survives_fail_restore]
    included. *)

module D = Pr_proto.Design_point

type status = Implemented of string list | Impractical of string

type cell = { point : D.t; status : status; paper_section : string }

let cells =
  [
    {
      point = D.make D.Distance_vector D.Hop_by_hop D.In_topology;
      status = Implemented [ "ecma"; "dv-plain (no policy)"; "egp (reachability only)" ];
      paper_section = "5.1";
    };
    {
      point = D.make D.Distance_vector D.Hop_by_hop D.Policy_terms;
      status = Implemented [ "idrp"; "idrp-per-source"; "idrp-scoped" ];
      paper_section = "5.2";
    };
    {
      point = D.make D.Link_state D.Hop_by_hop D.Policy_terms;
      status = Implemented [ "ls-hbh-pt"; "link-state (no policy)" ];
      paper_section = "5.3";
    };
    {
      point = D.make D.Link_state D.Source_routing D.Policy_terms;
      status = Implemented [ "orwg"; "orwg-no-handles" ];
      paper_section = "5.4";
    };
    {
      point = D.make D.Link_state D.Hop_by_hop D.In_topology;
      status =
        Impractical
          "flooding gives every node global knowledge, while topology-embedded \
           policy works by constraining information flow: no advantage (\u{00a7}5.5.1)";
      paper_section = "5.5.1";
    };
    {
      point = D.make D.Link_state D.Source_routing D.In_topology;
      status =
        Impractical
          "same conflict between flooding and topology-embedded policy (\u{00a7}5.5.1)";
      paper_section = "5.5.1";
    };
    {
      point = D.make D.Distance_vector D.Source_routing D.In_topology;
      status =
        Impractical
          "source routing without complete information: the source cannot control \
           the route computation (\u{00a7}5.5.2)";
      paper_section = "5.5.2";
    };
    {
      point = D.make D.Distance_vector D.Source_routing D.Policy_terms;
      status =
        Impractical
          "little advantage over link state: source control requires complete \
           information for, and control of, the computation (\u{00a7}5.5.2)";
      paper_section = "5.5.2";
    };
  ]

let find point =
  match List.find_opt (fun c -> D.equal c.point point) cells with
  | Some c -> c
  | None -> invalid_arg "Design_space.find: unknown design point"

let render () =
  let table =
    Pr_util.Texttable.create
      ~columns:
        [
          ("algorithm", Pr_util.Texttable.Left);
          ("decision location", Pr_util.Texttable.Left);
          ("policy expression", Pr_util.Texttable.Left);
          ("section", Pr_util.Texttable.Left);
          ("status", Pr_util.Texttable.Left);
        ]
  in
  List.iter
    (fun c ->
      let status =
        match c.status with
        | Implemented names -> "implemented: " ^ String.concat ", " names
        | Impractical why -> "impractical: " ^ why
      in
      Pr_util.Texttable.add_row table
        [
          D.algorithm_to_string c.point.D.algorithm;
          D.location_to_string c.point.D.location;
          D.policy_expression_to_string c.point.D.policy_expression;
          c.paper_section;
          status;
        ])
    cells;
  Pr_util.Texttable.render table

(** The experiment driver: run a protocol over a scenario and a
    workload, compare its behaviour against the policy oracle, and
    collect the paper's comparison metrics. *)

val oracle_max_hops : int
(** Hop bound used for ground-truth legal-route search (12, matching
    the ORWG route server's bound). *)

type result = {
  protocol : string;
  scenario : string;
  converged : bool;
  convergence_time : float;
  reconvergence_time : float option;  (** after the injected failure, if any *)
  messages : int;  (** control messages over the whole run *)
  bytes : int;
  computations : int;  (** total route-computation work units *)
  transit_computations : int;  (** work at transit-capable ADs only *)
  table_total : int;
  table_max : int;
  flows : int;
  oracle_reachable : int;  (** flows with a transit-legal route (oracle) *)
  delivered : int;
  dropped : int;
  looped : int;
  prep_failed : int;
  availability_loss : int;
      (** flows with a route that is both transit-legal and acceptable
          to the source's criteria, yet not delivered — "no available
          route when in fact a legal route exists" (paper §5.1) *)
  transit_violations : int;  (** delivered over a path some transit AD's policy forbids *)
  source_violations : int;  (** delivered over a path the source's policy forbids *)
  stretch_mean : float;  (** mean delivered-cost / best-legal-cost ratio *)
  header_bytes_mean : float;  (** mean data header size over delivered packets *)
  setup_hops_mean : float;  (** mean setup walk length over fresh setups *)
  cache_hits : int;
}

val evaluate :
  Registry.packed ->
  Scenario.t ->
  ?fail_link:Pr_topology.Link.id ->
  flows:Pr_policy.Flow.t list ->
  unit ->
  result
(** Converge the protocol on the scenario; optionally fail a link and
    re-converge; then send one packet per flow and classify outcomes
    against the oracle. *)

type convergence_probe = {
  initial_time : float;
  initial_messages : int;
  initial_bytes : int;
  after_failure_time : float;
  after_failure_messages : int;
  after_failure_converged : bool;
}

val convergence_after_failure :
  Registry.packed -> Scenario.t -> link:Pr_topology.Link.id -> convergence_probe
(** The E2 measurement: cost of initial convergence and of reacting to
    one link failure. *)

val availability :
  Registry.packed ->
  Scenario.t ->
  flows:Pr_policy.Flow.t list ->
  delivered:bool ->
  Pr_policy.Flow.t list
(** The sub-list of flows that were (or were not) delivered — used by
    experiments that need the identity of failing flows, not counts. *)

val result_columns : (string * Pr_util.Texttable.align) list
(** Standard column set for result tables. *)

val result_row : result -> string list

(** Policy impact prediction — the administrator tool of paper §6:

    "it will be possible to specify local policies that will result in
    poor service … it will be imperative for these administrators to
    have available network management tools to assist them in
    predicting the impact of their policies on the service received
    from the routing architecture."

    Given a scenario and a proposed replacement transit policy for one
    AD, this module compares the oracle's view of the internet before
    and after: which host pairs gain or lose connectivity, how route
    costs shift, and how much transit load the AD would attract or
    shed. It is pure analysis — no protocol is run. *)

type pair_change = {
  src : Pr_topology.Ad.id;
  dst : Pr_topology.Ad.id;
  before : Pr_topology.Path.t option;  (** best legal route before *)
  after : Pr_topology.Path.t option;
}

type report = {
  owner : Pr_topology.Ad.id;  (** the AD whose policy is being changed *)
  pairs_total : int;  (** ordered host pairs examined *)
  lost : pair_change list;  (** reachable before, unreachable after *)
  gained : pair_change list;  (** unreachable before, reachable after *)
  degraded : pair_change list;  (** still reachable, strictly costlier *)
  improved : pair_change list;  (** still reachable, strictly cheaper *)
  transit_load_before : int;
      (** host pairs whose best route transited the AD before *)
  transit_load_after : int;
  mean_cost_before : float;  (** over pairs reachable in both configurations *)
  mean_cost_after : float;
}

val assess :
  Scenario.t ->
  proposed:Pr_policy.Transit_policy.t ->
  ?qos:Pr_policy.Qos.t ->
  ?uci:Pr_policy.Uci.t ->
  ?max_hops:int ->
  unit ->
  report
(** Evaluate replacing [proposed.owner]'s transit policy with
    [proposed], for traffic of the given class (defaults:
    [Qos.Default], [Uci.Research]). [max_hops] defaults to
    {!Experiment.oracle_max_hops}. Cost of the analysis is two oracle
    searches per host pair. *)

val summary : report -> string
(** Multi-line human-readable summary, as printed by
    [prx impact]. *)

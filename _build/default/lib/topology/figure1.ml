(* Hand-built rendition of the paper's Figure 1. The figure shows
   backbones, regionals and campuses joined by hierarchical links, with
   a lateral link between two regionals, a lateral link between two
   campuses, a bypass link from a campus to a backbone, and (implied by
   the multi-homed stub discussion in §2.1) one campus attached to two
   regionals. *)

let backbone_1 = 0

let backbone_2 = 1

let regionals = [ 2; 3; 4; 5 ]

let campuses = [ 6; 7; 8; 9; 10; 11; 12; 13 ]

let bypass_campus = 6

let multihomed_campus = 13

let graph () =
  let ad id name klass level = Ad.make ~id ~name ~klass ~level in
  let ads =
    [|
      ad 0 "BB1" Ad.Transit Ad.Backbone;
      ad 1 "BB2" Ad.Transit Ad.Backbone;
      ad 2 "R1" Ad.Transit Ad.Regional;
      ad 3 "R2" Ad.Transit Ad.Regional;
      ad 4 "R3" Ad.Transit Ad.Regional;
      ad 5 "R4" Ad.Transit Ad.Regional;
      ad 6 "C1a" Ad.Multihomed Ad.Campus;
      (* bypass to BB2 *)
      ad 7 "C1b" Ad.Stub Ad.Campus;
      ad 8 "C2a" Ad.Stub Ad.Campus;
      ad 9 "C2b" Ad.Stub Ad.Campus;
      ad 10 "C3a" Ad.Stub Ad.Campus;
      ad 11 "C3b" Ad.Stub Ad.Campus;
      ad 12 "C4a" Ad.Stub Ad.Campus;
      ad 13 "C4b" Ad.Multihomed Ad.Campus (* homed to R4 and R3 *);
    |]
  in
  let specs =
    [
      (0, 1, Link.Lateral);
      (0, 2, Link.Hierarchical);
      (0, 3, Link.Hierarchical);
      (1, 4, Link.Hierarchical);
      (1, 5, Link.Hierarchical);
      (2, 6, Link.Hierarchical);
      (2, 7, Link.Hierarchical);
      (3, 8, Link.Hierarchical);
      (3, 9, Link.Hierarchical);
      (4, 10, Link.Hierarchical);
      (4, 11, Link.Hierarchical);
      (5, 12, Link.Hierarchical);
      (5, 13, Link.Hierarchical);
      (3, 4, Link.Lateral);
      (* regional lateral, crossing the backbone boundary *)
      (9, 10, Link.Lateral);
      (* campus-to-campus lateral *)
      (6, 1, Link.Bypass);
      (* campus bypass straight to the other backbone *)
      (13, 4, Link.Hierarchical) (* second home of C4b *);
    ]
  in
  let links =
    Array.of_list specs
    |> Array.mapi (fun id (a, b, kind) -> Link.make ~id ~a ~b kind)
  in
  Graph.create ads links

let describe () =
  let g = graph () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Figure 1 example internet: 2 backbones, 4 regionals, 8 campuses.\n";
  List.iter
    (fun (k, c) ->
      Buffer.add_string buf (Printf.sprintf "  %-12s %d\n" (Ad.klass_to_string k) c))
    (Graph.count_by_klass g);
  List.iter
    (fun (k, c) ->
      Buffer.add_string buf (Printf.sprintf "  %-12s links: %d\n" (Link.kind_to_string k) c))
    (Graph.count_links_by_kind g);
  Buffer.contents buf

(** Inter-AD links.

    A link connects two ADs. Its [kind] records its role in the
    hierarchical model of paper §2.1: the hierarchy proper, lateral
    links between ADs of the same level, and bypass links that skip
    levels (e.g. a campus connected directly to a backbone). *)

type id = int

type kind =
  | Hierarchical  (** parent/child link in the hierarchy *)
  | Lateral  (** same-level shortcut (e.g. regional–regional) *)
  | Bypass  (** level-skipping shortcut (e.g. campus–backbone) *)

type t = {
  id : id;
  a : Ad.id;  (** in hierarchical links, [a] is the upper (provider) side *)
  b : Ad.id;
  kind : kind;
  cost : int;  (** administrative metric, >= 1 *)
  delay : float;  (** propagation delay in simulated time units, > 0 *)
}

val make : id:id -> a:Ad.id -> b:Ad.id -> ?cost:int -> ?delay:float -> kind -> t

val other_end : t -> Ad.id -> Ad.id
(** [other_end l x] is the endpoint of [l] that is not [x].
    @raise Invalid_argument if [x] is not an endpoint. *)

val connects : t -> Ad.id -> Ad.id -> bool
(** True when the link joins the two given ADs, in either order. *)

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit

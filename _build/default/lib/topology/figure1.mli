(** The example internet of the paper's Figure 1.

    A hand-built rendition of the figure: two interconnected backbone
    networks, regionals beneath them, campuses beneath the regionals,
    plus one lateral link between regionals, one lateral link between
    campuses, one bypass link from a campus to a backbone, and one
    multihomed campus attached to two regionals. It is used by the F1
    experiment, the quickstart example and many unit tests as a small,
    fully understood internet. *)

val graph : unit -> Graph.t
(** Build a fresh copy of the Figure 1 topology (14 ADs, 17 links). *)

val backbone_1 : Ad.id

val backbone_2 : Ad.id

val regionals : Ad.id list
(** The four regional ADs, two per backbone. *)

val campuses : Ad.id list
(** The eight campus ADs (two per regional; one is multihomed, one has
    a bypass link). *)

val multihomed_campus : Ad.id
(** The campus attached to two regionals. *)

val bypass_campus : Ad.id
(** The campus with a direct link to a backbone. *)

val describe : unit -> string
(** Human-readable inventory used by the F1 experiment output. *)

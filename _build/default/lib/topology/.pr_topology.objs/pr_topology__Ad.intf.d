lib/topology/ad.mli: Format

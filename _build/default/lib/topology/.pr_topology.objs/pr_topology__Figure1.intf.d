lib/topology/figure1.mli: Ad Graph

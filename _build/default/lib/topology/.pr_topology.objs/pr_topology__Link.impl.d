lib/topology/link.ml: Ad Format

lib/topology/generator.ml: Ad Array Float Graph Hashtbl Link List Pr_util Printf Stdlib

lib/topology/link.mli: Ad Format

lib/topology/partial_order.mli: Ad Graph Path

lib/topology/ad.ml: Format

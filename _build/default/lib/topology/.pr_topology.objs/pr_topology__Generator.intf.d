lib/topology/generator.mli: Graph Pr_util

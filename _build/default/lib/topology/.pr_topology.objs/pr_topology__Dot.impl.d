lib/topology/dot.ml: Ad Array Buffer Graph Link List Printf

lib/topology/dot.mli: Graph Path

lib/topology/path.ml: Ad Array Format Graph Link List Stdlib String

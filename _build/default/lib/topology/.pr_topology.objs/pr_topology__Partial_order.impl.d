lib/topology/partial_order.ml: Ad Array Graph List Queue Stdlib

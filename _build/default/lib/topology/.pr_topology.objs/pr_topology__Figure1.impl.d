lib/topology/figure1.ml: Ad Array Buffer Graph Link List Printf

lib/topology/graph.ml: Ad Array Format Link List Queue

lib/topology/graph.mli: Ad Format Link

lib/topology/path.mli: Ad Format Graph

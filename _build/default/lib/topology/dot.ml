let node_attrs (a : Ad.t) =
  let shape =
    match a.Ad.klass with
    | Ad.Transit -> "box"
    | Ad.Hybrid -> "hexagon"
    | Ad.Stub -> "ellipse"
    | Ad.Multihomed -> "doublecircle"
  in
  let fill =
    match a.Ad.level with
    | Ad.Backbone -> "#c6dbef"
    | Ad.Regional -> "#e5f5e0"
    | Ad.Metro -> "#fee6ce"
    | Ad.Campus -> "#f2f0f7"
  in
  Printf.sprintf "shape=%s style=filled fillcolor=\"%s\" label=\"%s\\n#%d\"" shape fill
    a.Ad.name a.Ad.id

let edge_attrs highlight (l : Link.t) =
  let style =
    match l.Link.kind with
    | Link.Hierarchical -> "solid"
    | Link.Lateral -> "dashed"
    | Link.Bypass -> "bold"
  in
  let on_path =
    match highlight with
    | None -> false
    | Some path ->
      let rec scan = function
        | a :: (b :: _ as rest) -> Link.connects l a b || scan rest
        | _ -> false
      in
      scan path
  in
  Printf.sprintf "style=%s label=\"%d\"%s" style l.Link.cost
    (if on_path then " color=red penwidth=3" else "")

let to_dot ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph internet {\n";
  Buffer.add_string buf "  rankdir=TB;\n  node [fontsize=10];\n  edge [fontsize=8];\n";
  (* Group ADs of the same level on one rank, backbone first. *)
  List.iter
    (fun level ->
      let ids =
        Array.to_list (Graph.ads g)
        |> List.filter_map (fun (a : Ad.t) ->
               if a.Ad.level = level then Some a.Ad.id else None)
      in
      if ids <> [] then begin
        Buffer.add_string buf "  { rank=same; ";
        List.iter (fun id -> Buffer.add_string buf (Printf.sprintf "n%d; " id)) ids;
        Buffer.add_string buf "}\n"
      end)
    [ Ad.Backbone; Ad.Regional; Ad.Metro; Ad.Campus ];
  Array.iter
    (fun (a : Ad.t) ->
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" a.Ad.id (node_attrs a)))
    (Graph.ads g);
  Graph.fold_links g ~init:() ~f:(fun () l ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [%s];\n" l.Link.a l.Link.b (edge_attrs highlight l)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type t = { ranks : int array }

let of_levels g =
  let ranks =
    Array.map (fun (a : Ad.t) -> Ad.level_rank a.Ad.level) (Graph.ads g)
  in
  { ranks }

let of_ranks ranks = { ranks = Array.copy ranks }

let rank t i = t.ranks.(i)

type direction = Up | Down | Level

let direction t ~from_ad ~to_ad =
  let ra = t.ranks.(from_ad) and rb = t.ranks.(to_ad) in
  if rb < ra then Up else if rb > ra then Down else Level

let is_valley_free t path =
  (* Scan the steps: once we have gone Down (or Level, which ECMA's
     conservative labelling treats as down), going Up again is a
     violation. *)
  let rec scan gone_down = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> (
      match direction t ~from_ad:a ~to_ad:b with
      | Up -> if gone_down then false else scan false rest
      | Down | Level -> scan true rest)
  in
  scan false path

let valley_free_violation t path =
  let rec scan gone_down = function
    | [] | [ _ ] -> None
    | a :: (b :: _ as rest) -> (
      match direction t ~from_ad:a ~to_ad:b with
      | Up -> if gone_down then Some (a, b) else scan false rest
      | Down | Level -> scan true rest)
  in
  scan false path

type constraint_ = { above : Ad.id; below : Ad.id }

let embeddable ~n cs =
  (* Kahn's algorithm over the constraint digraph (above -> below).
     A topological order exists iff the constraints are acyclic; ranks
     are the topological layer numbers. *)
  let succs = Array.make n [] in
  let indegree = Array.make n 0 in
  List.iter
    (fun { above; below } ->
      if above < 0 || above >= n || below < 0 || below >= n then
        invalid_arg "Partial_order.embeddable: AD id out of range";
      succs.(above) <- below :: succs.(above);
      indegree.(below) <- indegree.(below) + 1)
    cs;
  let ranks = Array.make n 0 in
  let q = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i q
  done;
  let processed = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    incr processed;
    List.iter
      (fun v ->
        ranks.(v) <- Stdlib.max ranks.(v) (ranks.(u) + 1);
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v q)
      succs.(u)
  done;
  if !processed = n then Some ranks else None

(** Synthetic inter-AD topologies.

    The main generator produces the topology class of paper §2.1: a
    backbone/regional/metro/campus hierarchy augmented with lateral
    links at every level and bypass links from stubs straight to wide
    area backbones. Auxiliary generators produce the degenerate shapes
    used by specific experiments (trees for EGP, meshes, rings, lines). *)

type params = {
  backbones : int;
  regionals_per_backbone : int;
  metros_per_regional : int;
  campuses_per_metro : int;
  backbone_mesh : bool;  (** fully mesh the backbones (else a ring) *)
  lateral_prob : float;
      (** per regional/metro/campus, probability of one extra lateral
          link to a random same-level AD *)
  bypass_prob : float;
      (** per campus, probability of a direct bypass link to a random
          backbone *)
  multihoming_prob : float;
      (** per campus, probability of a second hierarchical parent *)
  hybrid_fraction : float;
      (** fraction of metro-level ADs that are hybrid (limited transit)
          rather than full transit *)
  max_cost : int;  (** link costs are drawn uniformly from [\[1, max_cost\]] *)
  max_delay : float;
      (** link delays are drawn uniformly from [\[0.5, max_delay\]] when
          [max_delay > 1.0]; at the default 1.0 every link has delay
          1.0 (QOS metrics then coincide with hop count) *)
}

val default : params
(** A small research-internet-like default: 2 backbones, 56 ADs. *)

val scaled : target_ads:int -> params
(** Parameters whose expected AD count approximates [target_ads],
    keeping the default structural ratios. *)

val generate : Pr_util.Rng.t -> params -> Graph.t
(** Generate a connected hierarchical internet. AD classes are derived
    from position and connectivity: backbones/regionals are transit,
    metros are transit or hybrid, campuses are stub (multihomed when
    they end up with more than one inter-AD connection). *)

val random_mesh : Pr_util.Rng.t -> n:int -> extra_links:int -> Graph.t
(** A connected random graph over [n] hybrid ADs: a uniform random
    spanning tree plus [extra_links] additional random links. With
    [extra_links = 0] the result is a tree (EGP's legal topology). *)

val ring : n:int -> Graph.t

val line : n:int -> Graph.t

(** Administrative Domains.

    An AD is the unit of inter-domain routing throughout this library
    (paper §4.1): routes are sequences of AD identifiers and intra-AD
    structure is deliberately invisible. *)

type id = int
(** Dense identifiers in [\[0, n)] within a topology. *)

type klass =
  | Stub  (** no transit for anyone (paper §2.1) *)
  | Multihomed
      (** stub with more than one inter-AD connection, still refusing
          all transit traffic *)
  | Transit  (** primary function is transit service (backbone, regional) *)
  | Hybrid  (** end-system access plus limited transit *)

type level =
  | Backbone
  | Regional
  | Metro
  | Campus
      (** position in the hierarchical topology of paper §2.1; lateral and
          bypass links cut across this hierarchy *)

type t = { id : id; name : string; klass : klass; level : level }

val make : id:id -> name:string -> klass:klass -> level:level -> t

val is_transit_capable : t -> bool
(** True for [Transit] and [Hybrid] ADs: only these may appear in the
    interior of an inter-AD route. *)

val klass_to_string : klass -> string

val level_to_string : level -> string

val level_rank : level -> int
(** 0 for [Backbone] growing downward to 3 for [Campus]; used to derive
    the provider/customer partial ordering. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

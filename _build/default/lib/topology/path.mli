(** AD-level paths: ordered sequences of AD identifiers.

    A route in this library is always such a sequence (paper §4.1);
    these helpers implement the loop checks that source routing relies
    on (paper §4.4) and bounded enumeration of simple paths used by the
    policy oracle and the route servers. *)

type t = Ad.id list
(** Non-empty, source first, destination last. *)

val source : t -> Ad.id

val destination : t -> Ad.id

val hops : t -> int
(** Number of inter-AD hops, i.e. [length - 1]. *)

val is_loop_free : t -> bool
(** No AD appears twice: the check a source performs before using a
    synthesized route. *)

val cost : Graph.t -> t -> int option
(** Sum of link costs along the path, or [None] if some consecutive
    pair is not adjacent. *)

val is_valid : Graph.t -> t -> bool
(** Consecutive ADs are adjacent and the path is loop-free. *)

val transit_ads : t -> Ad.id list
(** Interior ADs (everything except the two endpoints). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool

val enumerate_simple :
  Graph.t ->
  src:Ad.id ->
  dst:Ad.id ->
  max_hops:int ->
  ?edge_ok:(Ad.id -> Ad.id -> bool) ->
  ?node_ok:(Ad.id -> bool) ->
  ?limit:int ->
  unit ->
  t list
(** All simple paths from [src] to [dst] with at most [max_hops] hops,
    by depth-first search. [edge_ok u v] prunes traversing the edge
    [u -> v]; [node_ok v] prunes using [v] as an interior (transit)
    node — the endpoints are never filtered. At most [limit] paths are
    returned (default 10_000). *)

(** Graphviz export of AD-level internets.

    Renders the hierarchy top-down (backbones at the top rank) with the
    paper's Figure-1 conventions: solid edges for hierarchical links,
    dashed for lateral, bold for bypass; node shape encodes the AD
    class. *)

val to_dot : ?highlight:Path.t -> Graph.t -> string
(** A complete [graphviz] document. [highlight] colors one AD path
    (e.g. a route under discussion). Render with
    [dot -Tsvg out.dot > out.svg]. *)

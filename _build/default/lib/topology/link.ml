type id = int

type kind = Hierarchical | Lateral | Bypass

type t = { id : id; a : Ad.id; b : Ad.id; kind : kind; cost : int; delay : float }

let make ~id ~a ~b ?(cost = 1) ?(delay = 1.0) kind =
  if a = b then invalid_arg "Link.make: self loop";
  if cost < 1 then invalid_arg "Link.make: cost < 1";
  if delay <= 0.0 then invalid_arg "Link.make: delay <= 0";
  { id; a; b; kind; cost; delay }

let other_end t x =
  if x = t.a then t.b
  else if x = t.b then t.a
  else invalid_arg "Link.other_end: not an endpoint"

let connects t x y = (t.a = x && t.b = y) || (t.a = y && t.b = x)

let kind_to_string = function
  | Hierarchical -> "hierarchical"
  | Lateral -> "lateral"
  | Bypass -> "bypass"

let pp ppf t =
  Format.fprintf ppf "link#%d %d--%d (%s, cost %d)" t.id t.a t.b (kind_to_string t.kind) t.cost

type id = int

type klass = Stub | Multihomed | Transit | Hybrid

type level = Backbone | Regional | Metro | Campus

type t = { id : id; name : string; klass : klass; level : level }

let make ~id ~name ~klass ~level = { id; name; klass; level }

let is_transit_capable t =
  match t.klass with
  | Transit | Hybrid -> true
  | Stub | Multihomed -> false

let klass_to_string = function
  | Stub -> "stub"
  | Multihomed -> "multihomed"
  | Transit -> "transit"
  | Hybrid -> "hybrid"

let level_to_string = function
  | Backbone -> "backbone"
  | Regional -> "regional"
  | Metro -> "metro"
  | Campus -> "campus"

let level_rank = function
  | Backbone -> 0
  | Regional -> 1
  | Metro -> 2
  | Campus -> 3

let pp ppf t =
  Format.fprintf ppf "%s#%d(%s/%s)" t.name t.id (klass_to_string t.klass)
    (level_to_string t.level)

let equal a b = a.id = b.id && a.name = b.name && a.klass = b.klass && a.level = b.level

(** Partial orderings over ADs and the ECMA "up/down" rule (paper §5.1.1).

    The ECMA/NIST proposal prevents distance-vector loops in cyclic
    topologies by imposing a globally coordinated partial ordering on
    ADs; every link is labelled up or down, and once a route (or packet)
    has traversed a down link it may never traverse another up link.
    This module derives such an ordering from the topology hierarchy,
    labels links, checks path legality under the up/down rule, and
    decides whether an arbitrary set of ordering constraints can be
    embedded in a single partial order (the expressiveness question of
    experiment E3). *)

type t
(** A total preorder on ADs represented by integer ranks; smaller rank
    means higher in the hierarchy (closer to the backbone). *)

val of_levels : Graph.t -> t
(** Ranking by hierarchy level: backbone above regional above metro
    above campus. Lateral links join ADs of equal rank. *)

val of_ranks : int array -> t
(** Explicit ranking; index is the AD id. *)

val rank : t -> Ad.id -> int

type direction =
  | Up  (** toward smaller rank *)
  | Down  (** toward larger rank *)
  | Level  (** between equal ranks; ECMA treats these as down in both
               directions, the conservative labelling that preserves
               loop-freedom *)

val direction : t -> from_ad:Ad.id -> to_ad:Ad.id -> direction

val is_valley_free : t -> Path.t -> bool
(** True when the path obeys the up/down rule: a (possibly empty)
    ascending phase followed by a (possibly empty) descending phase —
    after the first Down or Level step no Up step may occur. *)

val valley_free_violation : t -> Path.t -> (Ad.id * Ad.id) option
(** The first offending step, for diagnostics. *)

(** {2 Embeddability of constraint sets}

    ECMA expresses policy by choosing the ordering. A set of policies
    is expressible only if the ordering constraints they induce are
    simultaneously satisfiable, i.e. form a DAG (paper §5.1.1: "there
    may not be a single partial ordering that simultaneously expresses
    the policies of all ADS"). *)

type constraint_ = { above : Ad.id; below : Ad.id }
(** Requirement that [above] be strictly higher than [below]. *)

val embeddable : n:int -> constraint_ list -> int array option
(** [embeddable ~n cs] returns a witness ranking over [n] ADs
    satisfying every constraint, or [None] when the constraints are
    cyclic and hence unembeddable in any single partial order. *)

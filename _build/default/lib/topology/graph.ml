type t = {
  ads : Ad.t array;
  links : Link.t array;
  adj : (Ad.id * Link.id) list array;
}

let create ads links =
  let n = Array.length ads in
  Array.iteri
    (fun i (a : Ad.t) ->
      if a.Ad.id <> i then invalid_arg "Graph.create: AD id must equal its index")
    ads;
  Array.iteri
    (fun i (l : Link.t) ->
      if l.Link.id <> i then invalid_arg "Graph.create: link id must equal its index";
      if l.Link.a < 0 || l.Link.a >= n || l.Link.b < 0 || l.Link.b >= n then
        invalid_arg "Graph.create: link endpoint out of range")
    links;
  let adj = Array.make n [] in
  Array.iter
    (fun (l : Link.t) ->
      adj.(l.Link.a) <- (l.Link.b, l.Link.id) :: adj.(l.Link.a);
      adj.(l.Link.b) <- (l.Link.a, l.Link.id) :: adj.(l.Link.b))
    links;
  Array.iteri (fun i entries -> adj.(i) <- List.sort compare entries) adj;
  { ads; links; adj }

let n t = Array.length t.ads

let num_links t = Array.length t.links

let ad t i = t.ads.(i)

let ads t = t.ads

let link t i = t.links.(i)

let links t = t.links

let neighbors t i = t.adj.(i)

let neighbor_ids t i = List.sort_uniq compare (List.map fst t.adj.(i))

let degree t i = List.length t.adj.(i)

let find_link t x y =
  let candidates = List.filter (fun (nbr, _) -> nbr = y) t.adj.(x) in
  match candidates with
  | [] -> None
  | _ :: _ ->
    let cheapest =
      List.fold_left
        (fun best (_, lid) ->
          match best with
          | None -> Some lid
          | Some b -> if t.links.(lid).Link.cost < t.links.(b).Link.cost then Some lid else best)
        None candidates
    in
    cheapest

let bfs_hops t src =
  let dist = Array.make (n t) (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _) ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  dist

let is_connected t =
  if n t = 0 then true
  else begin
    let dist = bfs_hops t 0 in
    Array.for_all (fun d -> d >= 0) dist
  end

let has_cycle t =
  (* Undirected cycle detection via DFS with parent-link tracking:
     seeing a visited vertex through a link other than the one we
     arrived by means a cycle (parallel links count). *)
  let visited = Array.make (n t) false in
  let found = ref false in
  let rec dfs u via_link =
    visited.(u) <- true;
    List.iter
      (fun (v, lid) ->
        if Some lid <> via_link then
          if visited.(v) then found := true else dfs v (Some lid))
      t.adj.(u)
  in
  for i = 0 to n t - 1 do
    if not visited.(i) then dfs i None
  done;
  !found

let shortest_path_hops t src dst =
  let dist = Array.make (n t) (-1) in
  let parent = Array.make (n t) (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _) ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v q
        end)
      t.adj.(u)
  done;
  if dist.(dst) < 0 then None
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
    Some (build [] dst)
  end

let fold_links t ~init ~f = Array.fold_left f init t.links

let count_by pred_list extract =
  List.map
    (fun key -> (key, List.length (List.filter (fun x -> extract x = key) pred_list)))

let count_by_klass t =
  let all = Array.to_list t.ads in
  count_by all (fun (a : Ad.t) -> a.Ad.klass) [ Ad.Stub; Ad.Multihomed; Ad.Transit; Ad.Hybrid ]

let count_by_level t =
  let all = Array.to_list t.ads in
  count_by all (fun (a : Ad.t) -> a.Ad.level) [ Ad.Backbone; Ad.Regional; Ad.Metro; Ad.Campus ]

let count_links_by_kind t =
  let all = Array.to_list t.links in
  count_by all (fun (l : Link.t) -> l.Link.kind) [ Link.Hierarchical; Link.Lateral; Link.Bypass ]

let ids_where t pred =
  Array.to_list t.ads |> List.filter pred |> List.map (fun (a : Ad.t) -> a.Ad.id)

let stub_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Stub | Ad.Multihomed -> true
      | Ad.Transit | Ad.Hybrid -> false)

let host_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Stub | Ad.Multihomed | Ad.Hybrid -> true
      | Ad.Transit -> false)

let transit_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Transit | Ad.Hybrid -> true
      | Ad.Stub | Ad.Multihomed -> false)

let hierarchy_descendants t root =
  let seen = Array.make (n t) false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter
        (fun (v, lid) ->
          let l = t.links.(lid) in
          if
            l.Link.kind = Link.Hierarchical
            && Ad.level_rank t.ads.(v).Ad.level > Ad.level_rank t.ads.(u).Ad.level
          then go v)
        t.adj.(u)
    end
  in
  go root;
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let pp_summary ppf t =
  Format.fprintf ppf "%d ADs, %d links;" (n t) (num_links t);
  List.iter
    (fun (k, c) -> if c > 0 then Format.fprintf ppf " %d %s" c (Ad.klass_to_string k))
    (count_by_klass t);
  Format.fprintf ppf ";";
  List.iter
    (fun (k, c) -> if c > 0 then Format.fprintf ppf " %d %s" c (Link.kind_to_string k))
    (count_links_by_kind t)

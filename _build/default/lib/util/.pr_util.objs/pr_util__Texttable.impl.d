lib/util/texttable.ml: Buffer List Printf Stdlib String

lib/util/sexp.mli:

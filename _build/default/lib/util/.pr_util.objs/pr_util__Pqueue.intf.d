lib/util/pqueue.mli:

lib/util/rng.mli:

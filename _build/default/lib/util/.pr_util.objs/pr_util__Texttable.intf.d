lib/util/texttable.mli:

(** Plain-text table rendering for experiment output.

    Every experiment prints its results through this module so that the
    bench harness output reads like the rows of a paper table. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Create a table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row; the row must have exactly as many cells as there are
    columns. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
(** Render with a header rule and aligned columns. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the table to stdout, preceded by an
    underlined title when provided. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_pct : float -> string
(** Format a fraction in [\[0,1\]] as a percentage with one decimal. *)

(** Summary statistics over float samples.

    Benchmarks and experiments report distributions (convergence rounds,
    message counts, path stretch); this module computes the summaries
    printed in the result tables. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val summary : float list -> summary
(** Summary of a sample. All fields are 0 for the empty sample. *)

val mean : float list -> float

val stddev : float list -> float

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation
    between order statistics. 0 for the empty sample. *)

val pp_summary : Format.formatter -> summary -> unit

type histogram = { bucket_width : float; buckets : (float * int) list }
(** Buckets are (lower bound, count), sorted ascending; empty buckets
    between occupied ones are included. *)

val histogram : bucket_width:float -> float list -> histogram

val pp_histogram : Format.formatter -> histogram -> unit

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or [0.] when [b = 0.]; used for
    "factor-of" columns in experiment tables. *)

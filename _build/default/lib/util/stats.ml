type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs - 1))

let percentile xs p =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let summary xs =
  match xs with
  | [] ->
    { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; median = 0.; p90 = 0.; p99 = 0. }
  | _ ->
    {
      count = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left Stdlib.min infinity xs;
      max = List.fold_left Stdlib.max neg_infinity xs;
      median = percentile xs 50.0;
      p90 = percentile xs 90.0;
      p99 = percentile xs 99.0;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f p90=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.median s.p90 s.max

type histogram = { bucket_width : float; buckets : (float * int) list }

let histogram ~bucket_width xs =
  if bucket_width <= 0.0 then invalid_arg "Stats.histogram: bucket_width <= 0";
  match xs with
  | [] -> { bucket_width; buckets = [] }
  | _ ->
    let bucket x = int_of_float (Float.floor (x /. bucket_width)) in
    let lo = List.fold_left (fun acc x -> Stdlib.min acc (bucket x)) max_int xs in
    let hi = List.fold_left (fun acc x -> Stdlib.max acc (bucket x)) min_int xs in
    let counts = Array.make (hi - lo + 1) 0 in
    List.iter (fun x -> counts.(bucket x - lo) <- counts.(bucket x - lo) + 1) xs;
    let buckets =
      Array.to_list (Array.mapi (fun i c -> (float_of_int (lo + i) *. bucket_width, c)) counts)
    in
    { bucket_width; buckets }

let pp_histogram ppf h =
  List.iter
    (fun (lower, count) ->
      Format.fprintf ppf "[%8.2f, %8.2f) %5d %s@." lower (lower +. h.bucket_width) count
        (String.make (Stdlib.min count 60) '#'))
    h.buckets

let ratio a b = if b = 0.0 then 0.0 else a /. b

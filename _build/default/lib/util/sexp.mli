(** Minimal s-expressions: the serialization format for scenarios.

    Atoms are quoted when they contain whitespace, parentheses, quotes
    or are empty; parsing accepts both quoted and bare atoms. The
    format round-trips byte-exactly through {!to_string}/{!of_string}
    for any value. *)

type t = Atom of string | List of t list

val to_string : t -> string
(** Single-line rendering. *)

val to_string_pretty : t -> string
(** Indented rendering for files meant to be read by humans. *)

val of_string : string -> (t, string) result
(** Parse one s-expression; trailing whitespace is allowed, trailing
    garbage is an error. *)

(** {2 Construction and destruction helpers} *)

val atom : string -> t

val int : int -> t

val field : string -> t list -> t
(** [field name values] is [(name values...)]. *)

val to_int : t -> (int, string) result

val to_atom : t -> (string, string) result

val assoc : string -> t -> (t list, string) result
(** [assoc name (List fields)] finds the field [(name v...)] and
    returns its values. *)

val assoc_opt : string -> t -> t list option

type align = Left | Right

type row = Cells of string list | Separator

type t = { columns : (string * align) list; mutable rows : row list }

let create ~columns =
  if columns = [] then invalid_arg "Texttable.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Texttable.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> Stdlib.max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      headers
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let render_cells cells =
    List.iteri
      (fun i cell ->
        let _, align = List.nth t.columns i in
        let width = List.nth widths i in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let rule () =
    List.iteri
      (fun i width ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make width '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  render_cells headers;
  rule ();
  List.iter
    (function
      | Cells cells -> render_cells cells
      | Separator -> rule ())
    rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some title ->
    print_newline ();
    print_endline title;
    print_endline (String.make (String.length title) '=')
  | None -> ());
  print_string (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

type t = Atom of string | List of t list

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then quote s else s

let rec to_string = function
  | Atom s -> atom_to_string s
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let rec pretty buf indent = function
  | Atom s -> Buffer.add_string buf (atom_to_string s)
  | List items ->
    let flat = to_string (List items) in
    if String.length flat + indent <= 78 then Buffer.add_string buf flat
    else begin
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (indent + 1) ' ')
          end;
          pretty buf (indent + 1) item)
        items;
      Buffer.add_char buf ')'
    end

let to_string_pretty t =
  let buf = Buffer.create 256 in
  pretty buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string

let of_string input =
  let len = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_space () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_space ()
    | _ -> ()
  in
  let parse_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Parse_error "dangling escape"));
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    if !pos = start then raise (Parse_error "empty atom");
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_one () =
    skip_space ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_space ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
          items := parse_one () :: !items;
          go ()
      in
      go ();
      List (List.rev !items)
    | Some '"' -> parse_quoted ()
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some _ -> parse_bare ()
  in
  match
    let v = parse_one () in
    skip_space ();
    if !pos <> len then raise (Parse_error "trailing garbage");
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let atom s = Atom s

let int i = Atom (string_of_int i)

let field name values = List (Atom name :: values)

let to_int = function
  | Atom s -> (
    match int_of_string_opt s with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "not an integer: %s" s))
  | List _ -> Error "expected an integer atom, got a list"

let to_atom = function
  | Atom s -> Ok s
  | List _ -> Error "expected an atom, got a list"

let assoc_opt name = function
  | Atom _ -> None
  | List items ->
    List.find_map
      (function
        | List (Atom n :: values) when n = name -> Some values
        | _ -> None)
      items

let assoc name sexp =
  match assoc_opt name sexp with
  | Some values -> Ok values
  | None -> Error (Printf.sprintf "missing field %s" name)

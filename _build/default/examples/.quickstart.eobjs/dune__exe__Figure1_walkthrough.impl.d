examples/figure1_walkthrough.ml: Array Format List Option Pr_core Pr_policy Pr_proto Pr_topology

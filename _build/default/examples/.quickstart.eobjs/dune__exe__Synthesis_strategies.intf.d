examples/synthesis_strategies.mli:

examples/policy_impact.ml: Format List Pr_core Pr_policy Pr_topology

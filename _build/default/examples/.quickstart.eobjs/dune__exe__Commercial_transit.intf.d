examples/commercial_transit.mli:

examples/quickstart.mli:

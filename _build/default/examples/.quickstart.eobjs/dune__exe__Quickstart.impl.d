examples/quickstart.ml: Format List Pr_orwg Pr_policy Pr_proto Pr_topology Pr_util

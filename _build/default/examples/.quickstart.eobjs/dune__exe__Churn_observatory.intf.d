examples/churn_observatory.mli:

examples/synthesis_strategies.ml: Format List Pr_core Pr_orwg Pr_policy Pr_proto Pr_sim Pr_topology Pr_util

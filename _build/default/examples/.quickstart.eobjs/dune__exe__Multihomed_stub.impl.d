examples/multihomed_stub.ml: Format List Pr_core Pr_policy Pr_proto Pr_topology

examples/policy_impact.mli:

examples/churn_observatory.ml: Format List Logs Pr_core Pr_orwg Pr_policy Pr_proto Pr_sim Pr_topology Pr_util

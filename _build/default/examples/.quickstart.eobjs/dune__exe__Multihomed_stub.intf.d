examples/multihomed_stub.mli:

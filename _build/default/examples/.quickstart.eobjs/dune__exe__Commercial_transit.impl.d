examples/commercial_transit.ml: Array Format List Pr_orwg Pr_policy Pr_proto Pr_topology

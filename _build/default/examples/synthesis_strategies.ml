(* Route synthesis strategies (paper section 6, open issue 1):
   "Precomputation of all policy routes in a large internet is
   computationally intractable, while on demand computation may
   introduce excessive latency at setup time."

   This example drives the ORWG route server under the three
   strategies on a mid-sized internet and prints the trade-off, then
   shows how topology change invalidates precomputed routes.

     dune exec examples/synthesis_strategies.exe *)

module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Metrics = Pr_sim.Metrics
module Packet = Pr_proto.Packet
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Scenario = Pr_core.Scenario
module O = Pr_orwg.Orwg.Orwg
module R = Runner.Make (O)

let () =
  let scenario = Scenario.hierarchical ~seed:2026 () in
  let g = scenario.Pr_core.Scenario.graph in
  Format.printf "internet: %a@.@." Graph.pp_summary g;
  let rng = Rng.create 1 in
  (* A skewed workload: a few popular destinations, many packets. *)
  let popular = Scenario.flows scenario ~rng ~count:25 ~classes:false () in
  let workload = List.concat (List.init 8 (fun _ -> Rng.sample rng 20 popular)) in
  let all_pairs = Scenario.all_host_pairs scenario in

  let run label precompute_list =
    let r = R.setup g scenario.Pr_core.Scenario.config in
    ignore (R.converge r);
    let c0 = Metrics.computations (R.metrics r) in
    let installed = O.precompute_flows (R.protocol r) precompute_list in
    let upfront = Metrics.computations (R.metrics r) - c0 in
    let setups = ref 0 and hits = ref 0 and latencies = ref [] in
    List.iter
      (fun f ->
        match R.send_flow r f with
        | Forwarding.Delivered { prep; _ } ->
          if prep.Packet.cache_hit then begin
            incr hits;
            latencies := 0.0 :: !latencies
          end
          else begin
            incr setups;
            latencies := float_of_int prep.Packet.setup_hops :: !latencies
          end
        | _ -> ())
      workload;
    Format.printf
      "%-24s precomputed %4d routes (upfront work %6d); workload: %d setups, %d hits, mean first-packet latency %.2f hops@."
      label installed upfront !setups !hits (Stats.mean !latencies);
    r
  in
  ignore (run "on-demand" []);
  let hrng = Rng.create 2 in
  ignore (run "hybrid (popular only)" popular);
  ignore (hrng);
  let r = run "precompute all pairs" all_pairs in

  (* Staleness: a backbone link fails; the route servers revalidate
     their caches against the reflooded database, so only the routes
     that actually died are re-synthesized. *)
  print_newline ();
  print_endline "--- a backbone lateral link fails ---";
  let frng = Rng.create 3 in
  (match Pr_sim.Network.fail_random_link (R.network r) frng ~kind:Pr_topology.Link.Lateral () with
  | Some lid ->
    let l = Graph.link g lid in
    Format.printf "failed link %d--%d@." l.Pr_topology.Link.a l.Pr_topology.Link.b
  | None -> print_endline "no lateral link to fail");
  ignore (R.converge r);
  let resetups = ref 0 and hits = ref 0 and unreachable = ref 0 and drops = ref 0 in
  List.iter
    (fun f ->
      match R.send_flow r f with
      | Forwarding.Delivered { prep; _ } ->
        if prep.Packet.cache_hit then incr hits else incr resetups
      | Forwarding.Prep_failed _ -> incr unreachable
      | Forwarding.Dropped _ | Forwarding.Looped _ -> incr drops)
    workload;
  Format.printf
    "after reconvergence: %d cached routes survived, %d re-setups, %d now policy-unreachable, %d dropped@."
    !hits !resetups !unreachable !drops;
  print_endline
    "\nThe cache survives almost intact: the route server drops exactly the\n\
     policy routes the new link-state database no longer supports (the\n\
     combination of precomputation and on-demand repair that section 6\n\
     recommends investigating). Flows reported policy-unreachable really\n\
     are: the oracle confirms every surviving physical route is forbidden\n\
     by the sources' own avoid lists — the source refuses rather than\n\
     violates its policy."

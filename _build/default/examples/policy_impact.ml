(* The administrator's "what if" tool (paper section 6): before an AD
   tightens its transit policy, predict who loses connectivity, whose
   routes degrade, and how much transit load the AD sheds.

     dune exec examples/policy_impact.exe *)

module Ad = Pr_topology.Ad
module Graph = Pr_topology.Graph
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Scenario = Pr_core.Scenario
module Impact = Pr_core.Impact

let () =
  let scenario = Scenario.hierarchical ~seed:2026 () in
  let g = scenario.Scenario.graph in
  Format.printf "internet: %a@.@." Graph.pp_summary g;

  (* Pick the busiest backbone AD. *)
  let backbone =
    match
      List.find_opt (fun ad -> (Graph.ad g ad).Ad.level = Ad.Backbone) (Graph.transit_ids g)
    with
    | Some ad -> ad
    | None -> 0
  in
  Format.printf "--- scenario A: backbone AD %d stops carrying commercial traffic ---@."
    backbone;
  let research_only =
    Transit_policy.make backbone
      [ Policy_term.make ~owner:backbone ~ucis:[ Pr_policy.Uci.Research ] () ]
  in
  Format.printf "as seen by research traffic:@.";
  print_string
    (Impact.summary
       (Impact.assess scenario ~proposed:research_only ~uci:Pr_policy.Uci.Research ()));
  Format.printf "as seen by commercial traffic:@.";
  print_string
    (Impact.summary
       (Impact.assess scenario ~proposed:research_only ~uci:Pr_policy.Uci.Commercial ()));

  Format.printf "@.--- scenario B: the same AD closes to transit entirely ---@.";
  print_string
    (Impact.summary (Impact.assess scenario ~proposed:(Transit_policy.no_transit backbone) ()));

  Format.printf "@.--- scenario C: a hybrid metro opens up completely ---@.";
  let hybrid =
    List.find_opt (fun ad -> (Graph.ad g ad).Ad.klass = Ad.Hybrid) (Graph.transit_ids g)
  in
  (match hybrid with
  | Some ad ->
    print_string
      (Impact.summary (Impact.assess scenario ~proposed:(Transit_policy.open_transit ad) ()))
  | None -> print_endline "(no hybrid AD in this internet)");
  print_endline
    "\nThe tool answers section 6's call: administrators can see, before\n\
     deploying a policy, whether it merely sheds unwanted transit or\n\
     silently cuts paying customers off the internet."

(* The multihomed stub scenario (paper section 2.1): an AD with two
   providers that wishes to disallow ALL transit traffic.

   This is the motivating case for policy routing: with policy-blind
   shortest-path protocols, a multihomed stub with a convenient pair of
   links becomes everyone's shortcut. We build a topology where the
   stub's two links form the cheapest path between two regionals, and
   compare what each design point does.

     dune exec examples/multihomed_stub.exe *)

module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Validate = Pr_policy.Validate
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry

(* Topology:
                BB (0)
          cost 5 /  \ cost 5
            R1 (1)   R2 (2)
          cost 1 \   / cost 1
              MULTI (3)          <- multihomed stub
               |        |
             C1 (4)   C2 (5)     <- customers of R1 and R2

   R1 <-> R2 traffic is cheapest via the stub (cost 2) but only legal
   via the backbone (cost 10). *)
let build () =
  let ads =
    [|
      Ad.make ~id:0 ~name:"BB" ~klass:Ad.Transit ~level:Ad.Backbone;
      Ad.make ~id:1 ~name:"R1" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:2 ~name:"R2" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:3 ~name:"MULTI" ~klass:Ad.Multihomed ~level:Ad.Campus;
      Ad.make ~id:4 ~name:"C1" ~klass:Ad.Stub ~level:Ad.Campus;
      Ad.make ~id:5 ~name:"C2" ~klass:Ad.Stub ~level:Ad.Campus;
    |]
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 ~cost:5 Link.Hierarchical;
      Link.make ~id:1 ~a:0 ~b:2 ~cost:5 Link.Hierarchical;
      Link.make ~id:2 ~a:1 ~b:3 ~cost:1 Link.Hierarchical;
      Link.make ~id:3 ~a:2 ~b:3 ~cost:1 Link.Hierarchical;
      Link.make ~id:4 ~a:1 ~b:4 ~cost:1 Link.Hierarchical;
      Link.make ~id:5 ~a:2 ~b:5 ~cost:1 Link.Hierarchical;
    |]
  in
  Graph.create ads links

let () =
  let g = build () in
  let config = Config.defaults g in
  (* C1 -> C2: the cheap path runs straight through the multihomed
     stub; the legal path climbs over the backbone. *)
  let flow = Flow.make ~src:4 ~dst:5 () in
  Format.printf "flow C1 -> C2 (%a)@." Flow.pp flow;
  Format.printf "cheapest physical path: 4->1->3->2->5 (cost 4, through the stub)@.";
  Format.printf "best legal path:        %s (over the backbone)@.@."
    (match Validate.best_legal g config flow ~max_hops:8 with
    | Some p -> Pr_topology.Path.to_string p
    | None -> "none");
  List.iter
    (fun name ->
      let (Registry.Packed (module P)) = Registry.find name in
      let module R = Runner.Make (P) in
      let r = R.setup g config in
      ignore (R.converge r);
      match R.send_flow r flow with
      | Forwarding.Delivered { path; _ } ->
        let through_stub = List.mem 3 (Pr_topology.Path.transit_ads path) in
        Format.printf "%-18s %-18s %s@." name
          (Pr_topology.Path.to_string path)
          (if through_stub then "<- TRANSITS THE MULTIHOMED STUB" else "(respects the stub)")
      | o -> Format.printf "%-18s %a@." name Forwarding.pp_outcome o)
    [ "dv-plain"; "link-state"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  print_newline ();
  print_endline
    "The policy-blind baselines cut through MULTI. Every policy design —\n\
     ECMA via the partial ordering (a valley through the stub is forbidden),\n\
     and the PT designs via the stub's empty policy-term set — routes over\n\
     the backbone instead.";
  (* The stub's own traffic is unaffected either way. *)
  let own = Flow.make ~src:3 ~dst:5 () in
  let (Registry.Packed (module P)) = Registry.find "orwg" in
  let module R = Runner.Make (P) in
  let r = R.setup g config in
  ignore (R.converge r);
  Format.printf "@.the stub's own traffic still flows: %a@." Forwarding.pp_outcome
    (R.send_flow r own)

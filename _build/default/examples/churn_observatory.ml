(* Watch a policy-routed internet live through topology churn.

   Enables the library's debug logging (link events at Info level),
   schedules a bounded fail/restore process into the event queue, and
   converges ORWG straight through it — reactions interleave with the
   churn, as they would in the paper's "somewhat adaptive" model
   (section 2.2). Then reports what traffic experienced.

     dune exec examples/churn_observatory.exe *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Network = Pr_sim.Network
module Churn = Pr_sim.Churn
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Scenario = Pr_core.Scenario
module R = Runner.Make (Pr_orwg.Orwg.Orwg)

let install_reporter () =
  (* A tiny console reporter: level + message, nothing else. *)
  let report _src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        Format.kfprintf
          (fun ppf ->
            Format.pp_print_newline ppf ();
            over ();
            k ())
          Format.std_formatter
          ("  [%s] " ^^ fmt)
          (Logs.level_to_string (Some level)))
  in
  Logs.set_reporter { Logs.report };
  Logs.Src.set_level Network.log_src (Some Logs.Info)

let () =
  install_reporter ();
  let scenario = Scenario.hierarchical ~seed:404 () in
  let g = scenario.Scenario.graph in
  Format.printf "internet: %a@.@." Graph.pp_summary g;

  let r = R.setup g scenario.Scenario.config in
  ignore (R.converge r);
  print_endline "control plane converged; warming the data plane...";
  let rng = Rng.create 405 in
  let flows = Scenario.flows scenario ~rng ~count:60 () in
  List.iter (fun f -> ignore (R.send_flow r f)) flows;

  print_endline "\ninjecting 10 link flips, 5 time units apart:";
  Churn.schedule (R.network r) (Rng.create 406) ~events:10 ~spacing:5.0 ();
  let c = R.converge r in
  Format.printf "\nrode out the churn: %a@.@." Runner.pp_convergence c;

  let delivered = ref 0 and refused = ref 0 and other = ref 0 in
  List.iter
    (fun f ->
      match R.send_flow r f with
      | Forwarding.Delivered _ -> incr delivered
      | Forwarding.Prep_failed _ -> incr refused
      | Forwarding.Dropped _ | Forwarding.Looped _ -> incr other)
    flows;
  Format.printf "after the storm: %d/%d delivered, %d source-refused, %d failed@."
    !delivered (List.length flows) !refused !other;
  print_endline
    "\nEvery [info] line above was a link failing or recovering while the\n\
     protocol was mid-reaction; route servers revalidated their cached\n\
     policy routes against each reflooded database and traffic re-settled\n\
     without manual intervention — no static routes anywhere (section 2.2)."

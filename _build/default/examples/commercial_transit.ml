(* A commercial transit marketplace (paper sections 2.2-2.3): a
   government-funded backbone that carries only research traffic, a
   commercial carrier that charges everyone, ADs that prefer the cheap
   backbone when eligible, and a time-of-day restriction.

   This exercises the full Policy Term vocabulary: UCI, source
   predicates, hour windows, and source route-selection criteria.

     dune exec examples/commercial_transit.exe *)

module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Flow = Pr_policy.Flow
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Source_policy = Pr_policy.Source_policy
module Config = Pr_policy.Config
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module R = Runner.Make (Pr_orwg.Orwg.Orwg)

(* Two parallel carriers between two regionals:

       GOVNET (0)  -- research traffic only, and only 20:00-06:00 for
      /          \    commercial sources that authenticated
    R1 (2)      R2 (3)
      \          /
       COMMNET (1) -- carries anyone
       |            |
     UNIV (4)     CORP (5)    *)
let build () =
  let ads =
    [|
      Ad.make ~id:0 ~name:"GOVNET" ~klass:Ad.Transit ~level:Ad.Backbone;
      Ad.make ~id:1 ~name:"COMMNET" ~klass:Ad.Transit ~level:Ad.Backbone;
      Ad.make ~id:2 ~name:"R1" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:3 ~name:"R2" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:4 ~name:"UNIV" ~klass:Ad.Stub ~level:Ad.Campus;
      Ad.make ~id:5 ~name:"CORP" ~klass:Ad.Stub ~level:Ad.Campus;
    |]
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:2 ~cost:1 Link.Hierarchical;
      Link.make ~id:1 ~a:0 ~b:3 ~cost:1 Link.Hierarchical;
      Link.make ~id:2 ~a:1 ~b:2 ~cost:2 Link.Hierarchical;
      Link.make ~id:3 ~a:1 ~b:3 ~cost:2 Link.Hierarchical;
      Link.make ~id:4 ~a:2 ~b:4 ~cost:1 Link.Hierarchical;
      Link.make ~id:5 ~a:3 ~b:5 ~cost:1 Link.Hierarchical;
    |]
  in
  Graph.create ads links

let config g =
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        match a.Ad.name with
        | "GOVNET" ->
          Transit_policy.make 0
            [
              (* Research traffic rides free, any time. *)
              Policy_term.make ~owner:0 ~ucis:[ Uci.Research ] ();
              (* Authenticated commercial traffic may use the off-hours
                 capacity. *)
              Policy_term.make ~owner:0 ~ucis:[ Uci.Commercial ] ~hours:(20, 6)
                ~auth_required:true ();
            ]
        | "COMMNET" -> Transit_policy.open_transit 1
        | _ ->
          if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
          else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  (* CORP prefers the cheap government backbone whenever it may use it. *)
  let source = Array.make 6 None in
  source.(5) <- Some (Source_policy.make ~owner:5 ~prefer:[ 0 ] ());
  Config.make ~transit ~source ()

let show r label flow =
  match R.send_flow r flow with
  | Forwarding.Delivered { path; _ } ->
    let via =
      if List.mem 0 path then "via GOVNET"
      else if List.mem 1 path then "via COMMNET"
      else "direct"
    in
    Format.printf "%-46s %-16s %s@." label (Pr_topology.Path.to_string path) via
  | o -> Format.printf "%-46s %a@." label Forwarding.pp_outcome o

(* Each probe gets a fresh route server so we see what synthesis does
   for that exact flow (see the note on route classes below). *)
let fresh g =
  let r = R.setup g (config g) in
  ignore (R.converge r);
  r

let () =
  let g = build () in
  Format.printf "UNIV (research) and CORP (commercial) exchange traffic:@.@.";
  show (fresh g) "research UNIV->CORP, noon"
    (Flow.make ~src:4 ~dst:5 ~uci:Uci.Research ~hour:12 ());
  show (fresh g) "commercial CORP->UNIV, noon"
    (Flow.make ~src:5 ~dst:4 ~uci:Uci.Commercial ~hour:12 ());
  show (fresh g) "commercial CORP->UNIV, 23:00, unauthenticated"
    (Flow.make ~src:5 ~dst:4 ~uci:Uci.Commercial ~hour:23 ());
  show (fresh g) "commercial CORP->UNIV, 23:00, authenticated"
    (Flow.make ~src:5 ~dst:4 ~uci:Uci.Commercial ~hour:23 ~authenticated:true ());
  show (fresh g) "government CORP->UNIV, noon"
    (Flow.make ~src:5 ~dst:4 ~uci:Uci.Government ~hour:12 ());
  print_newline ();
  print_endline
    "Research traffic and authenticated off-hours commercial traffic ride\n\
     GOVNET (cheap, preferred by CORP); all other commercial traffic is\n\
     pushed onto COMMNET — the carrier's policy wins over the source's\n\
     preference, exactly the transit-policy/route-selection split of\n\
     section 2.3.";
  print_newline ();
  print_endline
    "Route-class caveat: ORWG keys policy routes by (destination, QOS, UCI),\n\
     so on a shared route server the noon commercial route would also be\n\
     reused at 23:00 — hour and authentication are validated at setup, not\n\
     per class. Coarse classes are cheap but blur time-dependent policy;\n\
     this is the granularity trade-off of section 5.4.1.";
  (* What happens if the commercial carrier disappears? *)
  print_newline ();
  print_endline "--- COMMNET fails both its links ---";
  let r = fresh g in
  R.fail_link r 2;
  R.fail_link r 3;
  ignore (R.converge r);
  show r "commercial CORP->UNIV, noon (no COMMNET)"
    (Flow.make ~src:5 ~dst:4 ~uci:Uci.Commercial ~hour:12 ());
  print_endline
    "\nNo legal route remains at noon: GOVNET will not carry unauthenticated\n\
     commercial traffic in business hours, and the packet is refused at\n\
     setup — not silently smuggled across the government network."

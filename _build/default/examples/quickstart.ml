(* Quickstart: build an internet, give it policies, run the paper's
   recommended architecture (ORWG: link state + source routing +
   policy terms), and send a packet.

     dune exec examples/quickstart.exe *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Flow = Pr_policy.Flow
module Gen = Pr_policy.Gen
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner

(* The protocol is a first-class module; Runner wires it to a simulated
   network. *)
module R = Runner.Make (Pr_orwg.Orwg.Orwg)

let () =
  (* 1. A hierarchical internet in the style of the paper's Figure 1:
        backbones, regionals, metros, campuses, plus lateral and bypass
        links. Everything is seeded and deterministic. *)
  let rng = Rng.create 2026 in
  let graph = Generator.generate rng Generator.default in
  Format.printf "topology: %a@." Graph.pp_summary graph;

  (* 2. Policies: each transit AD advertises Policy Terms; some hosts
        configure route selection criteria. *)
  let config =
    Gen.generate rng graph { Gen.default with restrictiveness = 0.4 }
  in
  Format.printf "policies: %a@." Pr_policy.Config.pp_summary config;

  (* 3. Run the control plane to convergence: LSAs carrying policy
        terms flood until every route server has the full picture. *)
  let r = R.setup graph config in
  let c = R.converge r in
  Format.printf "control plane: %a@." Runner.pp_convergence c;

  (* 4. Send traffic between two campus ADs. The first packet triggers
        route synthesis and a setup walk; later packets ride the cached
        handle. *)
  let hosts = Graph.host_ids graph in
  match hosts with
  | src :: _ :: rest ->
    let dst = List.nth rest (List.length rest - 1) in
    let flow = Flow.make ~src ~dst () in
    Format.printf "@.flow %a@." Flow.pp flow;
    Format.printf "  first packet:  %a@." Forwarding.pp_outcome (R.send_flow r flow);
    Format.printf "  second packet: %a@." Forwarding.pp_outcome (R.send_flow r flow)
  | _ -> print_endline "internet too small for a demo flow"

(* Walk through the paper's Figure 1 internet: run all four design
   points of Table 1 on the same topology and show how each routes the
   same flow — including the baseline's cheerful violation of a stub's
   no-transit policy.

     dune exec examples/figure1_walkthrough.exe *)

module Graph = Pr_topology.Graph
module Figure1 = Pr_topology.Figure1
module Ad = Pr_topology.Ad
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Validate = Pr_policy.Validate
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry

let () =
  let g = Figure1.graph () in
  print_string (Figure1.describe ());
  let config = Config.defaults g in

  (* The interesting flow: campus C1b (7) to campus C4a (12), on the
     other side of the internet. The shortest hop path would cut
     through the bypass campus C1a (6) — which, as a multihomed stub,
     carries no transit. *)
  let flow = Flow.make ~src:7 ~dst:12 () in
  Format.printf "@.flow %a (C1b -> C4a)@." Flow.pp flow;
  (match Validate.best_legal g config flow ~max_hops:10 with
  | Some best ->
    Format.printf "oracle's best legal route: %s@." (Pr_topology.Path.to_string best)
  | None -> print_endline "oracle: no legal route");

  List.iter
    (fun name ->
      let (Registry.Packed (module P)) = Registry.find name in
      let module R = Runner.Make (P) in
      let r = R.setup g config in
      ignore (R.converge r);
      (match R.send_flow r flow with
      | Forwarding.Delivered { path; _ } ->
        let verdict =
          if Validate.transit_legal g config flow path then "legal"
          else "VIOLATES the stub's no-transit policy"
        in
        Format.printf "%-18s %-28s (%s)@." name (Pr_topology.Path.to_string path) verdict
      | o -> Format.printf "%-18s %a@." name Forwarding.pp_outcome o))
    [ "dv-plain"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];

  (* Now fail the backbone interconnect and watch who recovers, and
     through where. *)
  print_newline ();
  print_endline "--- failing the BB1--BB2 interconnect ---";
  let lid = Option.get (Graph.find_link g Figure1.backbone_1 Figure1.backbone_2) in
  List.iter
    (fun name ->
      let (Registry.Packed (module P)) = Registry.find name in
      let module R = Runner.Make (P) in
      let r = R.setup g config in
      ignore (R.converge r);
      R.fail_link r lid;
      let c = R.converge ~max_events:2_000_000 r in
      match R.send_flow r flow with
      | Forwarding.Delivered { path; _ } ->
        let verdict =
          if Validate.transit_legal g config flow path then "legal"
          else "VIOLATES policy (shortcut through a stub)"
        in
        Format.printf "%-18s %-34s (%s, reconverged in %d msgs)@." name
          (Pr_topology.Path.to_string path)
          verdict c.Runner.messages
      | o -> Format.printf "%-18s %a@." name Forwarding.pp_outcome o)
    [ "dv-plain"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  print_newline ();
  print_endline
    "What just happened, design point by design point:\n\
     - dv-plain shortcuts through the bypass campus C1a — a stub that\n\
       carries no transit: a policy violation.\n\
     - egp locks into a stable loop: binary reachability has no metric\n\
       that could ever reveal it (section 3).\n\
     - ecma drops: the legal detour climbs BB1 -> R2 -> R3 -> BB2, an\n\
       up-after-down move its single partial ordering forbids — route\n\
       availability lost to policy-in-topology (section 5.1).\n\
     - idrp, ls-hbh-pt and orwg find the legal detour over the regional\n\
       lateral link.";
  (* Does the oracle agree nothing legal remains? Evaluate on a copy of
     the graph without the failed link. *)
  let ads = Graph.ads g in
  let links =
    Graph.links g |> Array.to_list
    |> List.filter (fun (l : Pr_topology.Link.t) -> l.Pr_topology.Link.id <> lid)
    |> List.mapi (fun i (l : Pr_topology.Link.t) -> { l with Pr_topology.Link.id = i })
    |> Array.of_list
  in
  let g' = Graph.create ads links in
  Format.printf "oracle on the degraded topology: legal route exists = %b@."
    (Validate.route_exists g' (Config.defaults g') flow ~max_hops:10)

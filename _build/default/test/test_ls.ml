(* Tests for the classic link-state baseline. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Ls = Pr_ls.Ls
module R = Runner.Make (Ls)

let _check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let setup g =
  let r = R.setup g (Config.defaults g) in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  r

let ls_optimal_paths () =
  let g = Figure1.graph () in
  let r = setup g in
  let all_ok = ref true in
  for src = 0 to Graph.n g - 1 do
    for dst = 0 to Graph.n g - 1 do
      if src <> dst then begin
        let flow = Flow.make ~src ~dst () in
        match R.send_flow r flow with
        | Forwarding.Delivered { path; _ } ->
          let best =
            Path.enumerate_simple g ~src ~dst ~max_hops:13 ()
            |> List.filter_map (fun p -> Path.cost g p)
            |> List.fold_left Stdlib.min max_int
          in
          if Path.cost g path <> Some best then all_ok := false
        | _ -> all_ok := false
      end
    done
  done;
  check_bool "every delivered path is cost-optimal" true !all_ok

let ls_reconvergence () =
  let g = Figure1.graph () in
  let r = setup g in
  let lid = Option.get (Graph.find_link g 0 1) in
  R.fail_link r lid;
  let c = R.converge r in
  check_bool "reconverged" true c.Runner.converged;
  let flow = Flow.make ~src:7 ~dst:12 () in
  (match R.send_flow r flow with
  | Forwarding.Delivered { path; _ } ->
    check_bool "avoids failed link" true
      (not
         (List.exists2
            (fun a b -> (a = 0 && b = 1) || (a = 1 && b = 0))
            (List.filteri (fun i _ -> i < List.length path - 1) path)
            (List.tl path)))
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o);
  check_bool "spf ran" true (Ls.spf_runs (R.protocol r) > 0)

let ls_partition () =
  let g = Generator.line ~n:4 in
  let r = setup g in
  let lid = Option.get (Graph.find_link g 1 2) in
  R.fail_link r lid;
  ignore (R.converge r);
  Alcotest.(check (option int)) "no next hop across partition" None
    (Ls.next_hop_of (R.protocol r) ~at:0 ~dst:3);
  Alcotest.(check (option int)) "next hop within partition" (Some 1)
    (Ls.next_hop_of (R.protocol r) ~at:0 ~dst:1)

let ls_cheaper_convergence_messages_than_dv () =
  (* Link state floods O(links) LSAs; DV exchanges full vectors —
     on meshy graphs LS converges with fewer messages. *)
  let g = Generator.random_mesh (Rng.create 4) ~n:30 ~extra_links:25 in
  let module Rdv = Runner.Make (Pr_dv.Dv.Plain) in
  let rls = R.setup g (Config.defaults g) in
  let cls = R.converge rls in
  let rdv = Rdv.setup g (Config.defaults g) in
  let cdv = Rdv.converge rdv in
  check_bool
    (Printf.sprintf "LS fewer messages (%d < %d)" cls.Runner.messages cdv.Runner.messages)
    true
    (cls.Runner.messages < cdv.Runner.messages)

let ls_next_hop_is_neighbor =
  QCheck.Test.make ~name:"next hops are actual neighbors" ~count:10 QCheck.small_int
    (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      let r = R.setup g (Config.defaults g) in
      ignore (R.converge r);
      let ok = ref true in
      let n = Graph.n g in
      for at = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if at <> dst then
            match Ls.next_hop_of (R.protocol r) ~at ~dst with
            | None -> ok := false
            | Some nh -> if not (List.mem nh (Graph.neighbor_ids g at)) then ok := false
        done
      done;
      !ok)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_ls"
    [
      ( "ls",
        [
          Alcotest.test_case "optimal paths" `Quick ls_optimal_paths;
          Alcotest.test_case "reconvergence" `Quick ls_reconvergence;
          Alcotest.test_case "partition" `Quick ls_partition;
          Alcotest.test_case "fewer messages than DV" `Quick
            ls_cheaper_convergence_messages_than_dv;
        ]
        @ qsuite [ ls_next_hop_is_neighbor ] );
    ]

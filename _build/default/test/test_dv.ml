(* Tests for the classic distance-vector baseline: correctness of
   converged routes, failure handling, and the count-to-infinity
   behaviour that motivates the paper's design discussion. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Dv = Pr_dv.Dv
module R = Runner.Make (Dv.Plain)
module Rsh = Runner.Make (Dv.Split_horizon)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let setup g =
  let r = R.setup g (Config.defaults g) in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  r

let dv_shortest_paths () =
  let g = Figure1.graph () in
  let r = setup g in
  (* Converged DV metrics equal true shortest path costs. *)
  let all_ok = ref true in
  for src = 0 to Graph.n g - 1 do
    for dst = 0 to Graph.n g - 1 do
      if src <> dst then begin
        match Dv.route_of (R.protocol r) ~at:src ~dst with
        | None -> all_ok := false
        | Some (metric, _) ->
          (* Compare against Dijkstra-free reference: cost of the best
             path by exhaustive enumeration. *)
          let best =
            Pr_topology.Path.enumerate_simple g ~src ~dst ~max_hops:13 ()
            |> List.filter_map (fun p -> Pr_topology.Path.cost g p)
            |> List.fold_left Stdlib.min max_int
          in
          if metric <> best then all_ok := false
      end
    done
  done;
  check_bool "all metrics optimal" true !all_ok

let dv_delivers_all_pairs () =
  let g = Figure1.graph () in
  let r = setup g in
  let undelivered = ref 0 in
  for src = 0 to Graph.n g - 1 do
    for dst = 0 to Graph.n g - 1 do
      if src <> dst then begin
        let flow = Flow.make ~src ~dst () in
        if not (Forwarding.delivered (R.send_flow r flow)) then incr undelivered
      end
    done
  done;
  check_int "all pairs delivered" 0 !undelivered

let dv_reconverges_after_failure () =
  let g = Figure1.graph () in
  let r = setup g in
  (* Fail the backbone-backbone link; connectivity survives via the
     regional lateral and the bypass. *)
  let lid = Option.get (Graph.find_link g 0 1) in
  R.fail_link r lid;
  let c = R.converge r in
  check_bool "reconverged" true c.Runner.converged;
  let flow = Flow.make ~src:7 ~dst:12 () in
  check_bool "still delivers" true (Forwarding.delivered (R.send_flow r flow))

let dv_unreachable_after_partition () =
  (* On a line, failing the middle link partitions the network: DV
     counts to infinity and then reports no route. *)
  let g = Generator.line ~n:6 in
  let r = setup g in
  let lid = Option.get (Graph.find_link g 2 3) in
  R.fail_link r lid;
  let c = R.converge ~max_events:500_000 r in
  check_bool "count-to-infinity terminates" true c.Runner.converged;
  check_bool "no route across partition" true
    (Dv.route_of (R.protocol r) ~at:0 ~dst:5 = None);
  check_bool "route within partition" true
    (Dv.route_of (R.protocol r) ~at:0 ~dst:2 <> None);
  let flow = Flow.make ~src:0 ~dst:5 () in
  (match R.send_flow r flow with
  | Forwarding.Dropped _ -> ()
  | o -> Alcotest.failf "expected drop, got %a" Forwarding.pp_outcome o)

(* Triangle 0-1-2 with a stub destination 3 hanging off 2: after the
   stub link fails, 0 and 1 hold each other's stale routes to 3 and
   bounce the metric up to infinity. The classic count-to-infinity. *)
let count_to_infinity_graph () =
  let module Ad = Pr_topology.Ad in
  let module Link = Pr_topology.Link in
  let ads =
    Array.init 4 (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id)
          ~klass:(if id = 3 then Ad.Stub else Ad.Hybrid)
          ~level:(if id = 3 then Ad.Campus else Ad.Metro))
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 Link.Lateral;
      Link.make ~id:1 ~a:1 ~b:2 Link.Lateral;
      Link.make ~id:2 ~a:0 ~b:2 Link.Lateral;
      Link.make ~id:3 ~a:2 ~b:3 Link.Hierarchical;
    |]
  in
  Pr_topology.Graph.create ads links

let dv_count_to_infinity_cost () =
  let g = count_to_infinity_graph () in
  let run_plain () =
    let r = R.setup g (Config.defaults g) in
    ignore (R.converge r);
    R.fail_link r 3;
    let c = R.converge ~max_events:500_000 r in
    (c.Runner.converged, c.Runner.messages)
  in
  let run_sh () =
    let r = Rsh.setup g (Config.defaults g) in
    ignore (Rsh.converge r);
    Rsh.fail_link r 3;
    let c = Rsh.converge ~max_events:500_000 r in
    (c.Runner.converged, c.Runner.messages)
  in
  let plain_ok, plain_msgs = run_plain () in
  let sh_ok, sh_msgs = run_sh () in
  check_bool "plain terminates (bounded by infinity metric)" true plain_ok;
  check_bool "split horizon terminates" true sh_ok;
  (* Poisoned reverse stops two-node bounces but not the three-node
     cycle through the triangle, so both variants count upward — the
     plain variant strictly worse. *)
  check_bool
    (Printf.sprintf "count-to-infinity is expensive (%d plain vs %d split-horizon)"
       plain_msgs sh_msgs)
    true
    (plain_msgs > sh_msgs && plain_msgs > 100)

let dv_table_entries () =
  let g = Figure1.graph () in
  let r = setup g in
  (* Every node reaches every destination. *)
  check_int "full tables" (14 * 14) (R.table_entries r)

let dv_link_restoration () =
  let g = Generator.line ~n:4 in
  let r = setup g in
  let lid = Option.get (Graph.find_link g 1 2) in
  R.fail_link r lid;
  ignore (R.converge ~max_events:500_000 r);
  R.restore_link r lid;
  let c = R.converge r in
  check_bool "converged after restore" true c.Runner.converged;
  check_bool "route restored" true (Dv.route_of (R.protocol r) ~at:0 ~dst:3 <> None)

let dv_deterministic_runs =
  QCheck.Test.make ~name:"two identical runs give identical metrics" ~count:10
    QCheck.small_int (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      let once () =
        let r = R.setup g (Config.defaults g) in
        let c = R.converge r in
        (c.Runner.messages, c.Runner.bytes, c.Runner.sim_time)
      in
      once () = once ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_dv"
    [
      ( "dv",
        [
          Alcotest.test_case "shortest paths" `Quick dv_shortest_paths;
          Alcotest.test_case "delivers all pairs" `Quick dv_delivers_all_pairs;
          Alcotest.test_case "reconverges after failure" `Quick dv_reconverges_after_failure;
          Alcotest.test_case "partition handled" `Quick dv_unreachable_after_partition;
          Alcotest.test_case "count-to-infinity vs split horizon" `Quick
            dv_count_to_infinity_cost;
          Alcotest.test_case "table entries" `Quick dv_table_entries;
          Alcotest.test_case "link restoration" `Quick dv_link_restoration;
        ]
        @ qsuite [ dv_deterministic_runs ] );
    ]

test/test_ls.ml: Alcotest List Option Pr_dv Pr_ls Pr_policy Pr_proto Pr_topology Pr_util Printf QCheck QCheck_alcotest Stdlib

test/test_idrp.ml: Alcotest Array List Option Pr_idrp Pr_policy Pr_proto Pr_topology Pr_util Printf QCheck QCheck_alcotest

test/test_lshbh.mli:

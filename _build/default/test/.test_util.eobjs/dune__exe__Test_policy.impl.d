test/test_policy.ml: Alcotest Array List Pr_policy Pr_topology Pr_util QCheck QCheck_alcotest Stdlib

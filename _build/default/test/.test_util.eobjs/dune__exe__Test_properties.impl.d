test/test_properties.ml: Alcotest List Pr_core Pr_policy Printf

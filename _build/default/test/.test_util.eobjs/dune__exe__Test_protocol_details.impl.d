test/test_protocol_details.ml: Alcotest Array List Option Pr_dv Pr_ecma Pr_idrp Pr_ls Pr_orwg Pr_policy Pr_proto Pr_sim Pr_topology Pr_util Printf

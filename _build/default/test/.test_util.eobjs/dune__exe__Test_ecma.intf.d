test/test_ecma.mli:

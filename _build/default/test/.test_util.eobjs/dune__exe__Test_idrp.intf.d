test/test_idrp.mli:

test/test_egp.mli:

test/test_egp.ml: Alcotest Option Pr_egp Pr_policy Pr_proto Pr_topology Pr_util

test/test_ls.mli:

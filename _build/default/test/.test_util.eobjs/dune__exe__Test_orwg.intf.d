test/test_orwg.mli:

test/test_ecma.ml: Alcotest Array List Pr_dv Pr_ecma Pr_policy Pr_proto Pr_topology Pr_util Printf QCheck QCheck_alcotest

test/test_dv.ml: Alcotest Array List Option Pr_dv Pr_policy Pr_proto Pr_topology Pr_util Printf QCheck QCheck_alcotest Stdlib

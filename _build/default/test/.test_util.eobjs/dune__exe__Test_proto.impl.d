test/test_proto.ml: Alcotest List Option Pr_ecma Pr_lshbh Pr_policy Pr_proto Pr_sim Pr_topology Pr_util Printf QCheck QCheck_alcotest

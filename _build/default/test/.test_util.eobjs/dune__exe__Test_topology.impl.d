test/test_topology.ml: Alcotest Array List Pr_topology Pr_util Printf QCheck QCheck_alcotest Stdlib String

test/test_lshbh.ml: Alcotest Array List Option Pr_lshbh Pr_orwg Pr_policy Pr_proto Pr_sim Pr_topology Pr_util Printf QCheck QCheck_alcotest

test/test_protocol_details.mli:

test/test_core.ml: Alcotest Array Filename Fun List Option Pr_core Pr_policy Pr_proto Pr_topology Pr_util QCheck QCheck_alcotest Result String Sys

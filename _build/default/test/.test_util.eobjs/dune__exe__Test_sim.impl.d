test/test_sim.ml: Alcotest Array List Option Pr_ls Pr_policy Pr_proto Pr_sim Pr_topology Pr_util Printf

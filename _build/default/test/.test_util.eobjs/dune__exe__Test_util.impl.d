test/test_util.ml: Alcotest Gen List Pr_util QCheck QCheck_alcotest Result String Test

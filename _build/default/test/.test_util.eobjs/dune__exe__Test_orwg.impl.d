test/test_orwg.ml: Alcotest Array List Option Pr_orwg Pr_policy Pr_proto Pr_topology Pr_util Printf QCheck QCheck_alcotest String

(* Tests for the LS hop-by-hop + Policy Terms design point: full
   expressiveness, replicated computation, dependence on consistency. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad
module Path = Pr_topology.Path
module Figure1 = Pr_topology.Figure1
module Generator = Pr_topology.Generator
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Validate = Pr_policy.Validate
module Metrics = Pr_sim.Metrics
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Lshbh = Pr_lshbh.Lshbh
module R = Runner.Make (Lshbh)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let converge_on config g =
  let r = R.setup g config in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  r

let lshbh_delivers_and_legal =
  QCheck.Test.make ~name:"delivers only transit-legal paths; no loss vs oracle" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g = Figure1.graph () in
      let config = Gen.generate rng g { Gen.default with restrictiveness = 0.5 } in
      let r = R.setup g config in
      ignore (R.converge r);
      let ok = ref true in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then begin
                let flow = Flow.make ~src ~dst () in
                match R.send_flow r flow with
                | Forwarding.Delivered { path; _ } ->
                  if not (Validate.transit_legal g config flow path) then ok := false
                | _ ->
                  (* LS-HBH finds any existing legal route (converged
                     state): undelivered means the oracle agrees none
                     exists. *)
                  if Validate.route_exists g config flow ~max_hops:12 then ok := false
              end)
            (Graph.host_ids g))
        (Graph.host_ids g);
      !ok)

let lshbh_uniform_computation_ignores_source_policy () =
  (* Source policies are not advertised: the computation is uniform and
     may violate the source's avoid list. *)
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if Ad.is_transit_capable a then Pr_policy.Transit_policy.open_transit a.Ad.id
        else Pr_policy.Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let source = Array.make 14 None in
  (* 7 wants to avoid BB1 — but every 7->8 route crosses it. *)
  source.(7) <- Some (Pr_policy.Source_policy.make ~owner:7 ~avoid:[ 0 ] ());
  let config = Config.make ~transit ~source () in
  let r = converge_on config g in
  match R.send_flow r (Flow.make ~src:7 ~dst:8 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "delivered in spite of the source policy" true (List.mem 0 path)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let lshbh_transit_burden_exceeds_orwg () =
  (* The §5.3 complaint: every AD on the path repeats the computation,
     so transit ADs do route synthesis work ORWG spares them. *)
  let g = Figure1.graph () in
  let config = Config.defaults g in
  let flows =
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst -> if src = dst then None else Some (Flow.make ~src ~dst ()))
          (Graph.host_ids g))
      (Graph.host_ids g)
  in
  let transit_work metrics =
    List.fold_left (fun acc ad -> acc + Metrics.computations_of metrics ad) 0
      (Graph.transit_ids g)
  in
  let r = converge_on config g in
  List.iter (fun f -> ignore (R.send_flow r f)) flows;
  let lshbh_work = transit_work (R.metrics r) in
  let module Ro = Runner.Make (Pr_orwg.Orwg.Orwg) in
  let ro = Ro.setup g config in
  ignore (Ro.converge ro);
  List.iter (fun f -> ignore (Ro.send_flow ro f)) flows;
  let orwg_work = transit_work (Ro.metrics ro) in
  check_bool
    (Printf.sprintf "transit computation %d (ls-hbh) vs %d (orwg)" lshbh_work orwg_work)
    true
    (lshbh_work > 2 * orwg_work)

let lshbh_caches_per_source_routes () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  ignore (R.send_flow r (Flow.make ~src:7 ~dst:8 ()));
  ignore (R.send_flow r (Flow.make ~src:8 ~dst:7 ()));
  (* BB1 sits on both routes and must hold one cached route per
     (source, dest, class). *)
  check_bool "transit caches per-source state" true
    (Lshbh.cache_entries (R.protocol r) 0 >= 2);
  (* Repeating a flow must not add cache entries. *)
  let before = Lshbh.cache_entries (R.protocol r) 0 in
  ignore (R.send_flow r (Flow.make ~src:7 ~dst:8 ()));
  check_int "cache stable on repeat" before (Lshbh.cache_entries (R.protocol r) 0)

let lshbh_computed_route_exposed () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  match Lshbh.computed_route (R.protocol r) ~at:7 flow with
  | None -> Alcotest.fail "expected a computed route"
  | Some path ->
    check_int "starts at source" 7 (Path.source path);
    check_int "ends at dest" 8 (Path.destination path)

let lshbh_reroutes_after_failure () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  ignore (R.send_flow r (Flow.make ~src:7 ~dst:12 ()));
  let lid = Option.get (Graph.find_link g 0 1) in
  R.fail_link r lid;
  let c = R.converge r in
  check_bool "reconverged" true c.Runner.converged;
  match R.send_flow r (Flow.make ~src:7 ~dst:12 ()) with
  | Forwarding.Delivered { path; _ } ->
    let rec uses_link = function
      | a :: b :: rest -> ((a = 0 && b = 1) || (a = 1 && b = 0)) || uses_link (b :: rest)
      | _ -> false
    in
    check_bool "avoids the failed link" false (uses_link path)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_lshbh"
    [
      ( "ls-hbh",
        [
          Alcotest.test_case "uniform computation vs source policy" `Quick
            lshbh_uniform_computation_ignores_source_policy;
          Alcotest.test_case "transit burden vs orwg" `Quick lshbh_transit_burden_exceeds_orwg;
          Alcotest.test_case "per-source caches" `Quick lshbh_caches_per_source_routes;
          Alcotest.test_case "computed route exposed" `Quick lshbh_computed_route_exposed;
          Alcotest.test_case "reroutes after failure" `Quick lshbh_reroutes_after_failure;
        ]
        @ qsuite [ lshbh_delivers_and_legal ] );
    ]

(* Tests for the EGP baseline: correct on trees, degraded on cycles —
   the paper's §3 topology-restriction argument. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Egp = Pr_egp.Egp
module R = Runner.Make (Egp)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let setup g =
  let r = R.setup g (Config.defaults g) in
  let c = R.converge ~max_events:2_000_000 r in
  check_bool "converged" true c.Runner.converged;
  r

let all_pairs_outcomes r g =
  let delivered = ref 0 and looped = ref 0 and dropped = ref 0 and total = ref 0 in
  let n = Graph.n g in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        incr total;
        match R.send_flow r (Flow.make ~src ~dst ()) with
        | Forwarding.Delivered _ -> incr delivered
        | Forwarding.Looped _ -> incr looped
        | Forwarding.Dropped _ | Forwarding.Prep_failed _ -> incr dropped
      end
    done
  done;
  (!delivered, !looped, !dropped, !total)

let egp_correct_on_tree () =
  let g = Generator.random_mesh (Rng.create 8) ~n:25 ~extra_links:0 in
  check_bool "tree" false (Graph.has_cycle g);
  let r = setup g in
  let delivered, looped, _, total = all_pairs_outcomes r g in
  check_int "no loops on tree" 0 looped;
  check_int "all delivered on tree" total delivered

let egp_correct_on_line () =
  let g = Generator.line ~n:8 in
  let r = setup g in
  let delivered, looped, _, total = all_pairs_outcomes r g in
  check_int "no loops" 0 looped;
  check_int "all delivered" total delivered

let egp_degrades_with_cycles () =
  (* On cyclic meshes the binary-reachability model misroutes: compare
     delivery across increasing extra links; some seed must show
     degradation (we fix one known to). *)
  let tree = Generator.random_mesh (Rng.create 12) ~n:20 ~extra_links:0 in
  let mesh = Generator.random_mesh (Rng.create 12) ~n:20 ~extra_links:15 in
  let rt = setup tree in
  let dt, _, _, tt = all_pairs_outcomes rt tree in
  check_int "tree perfect" tt dt;
  let rm = setup mesh in
  let dm, lm, drm, tm = all_pairs_outcomes rm mesh in
  (* The protocol may still deliver everything (cycles are not always
     fatal), but any loop or drop on a connected graph is a failure
     DV/LS never exhibit; record whichever happened. *)
  check_bool "mesh outcome accounted" true (dm + lm + drm = tm)

let egp_stale_loop_after_failure () =
  (* Build a square with a destination hanging off one corner. After
     the direct link fails, stale mutual advertisements around the
     cycle can persist; at minimum the protocol must not diverge. *)
  let g = Generator.ring ~n:6 in
  let r = setup g in
  let lid = Option.get (Graph.find_link g 0 5) in
  R.fail_link r lid;
  let c = R.converge ~max_events:2_000_000 r in
  check_bool "terminates after failure" true c.Runner.converged;
  (* Count pairs that now fail: on a ring minus one link (a line),
     correct routing still reaches everything; EGP may not. *)
  let delivered, looped, dropped, total = all_pairs_outcomes r g in
  check_bool "outcomes partition" true (delivered + looped + dropped = total)

let egp_table_entries () =
  let g = Generator.line ~n:5 in
  let r = setup g in
  (* Each node reaches all 5 destinations (including itself). *)
  check_int "full reachability" 25 (R.table_entries r)

let () =
  Alcotest.run "pr_egp"
    [
      ( "egp",
        [
          Alcotest.test_case "correct on tree" `Quick egp_correct_on_tree;
          Alcotest.test_case "correct on line" `Quick egp_correct_on_line;
          Alcotest.test_case "cycles accounted" `Quick egp_degrades_with_cycles;
          Alcotest.test_case "failure on ring terminates" `Quick egp_stale_loop_after_failure;
          Alcotest.test_case "table entries" `Quick egp_table_entries;
        ] );
    ]

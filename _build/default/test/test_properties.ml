(* Conformance sweep: every protocol in the registry must satisfy the
   behavioural properties of Pr_core.Properties on every scenario
   shape we throw at it. *)

module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Properties = Pr_core.Properties

let scenarios packed =
  (* The per-source IDRP variant holds quadratic state: exercise it on
     the small internet only. *)
  let small = [ ("figure1", Scenario.figure1 ~seed:5 ()) ] in
  let larger =
    [
      ( "hierarchical-open",
        Scenario.open_policies (Scenario.hierarchical ~seed:11 ()) );
      ( "hierarchical-restricted",
        Scenario.hierarchical
          ~policy:{ Pr_policy.Gen.default with restrictiveness = 0.5 }
          ~seed:13 () );
    ]
  in
  if Registry.name packed = "idrp-per-source" then small else small @ larger

let case packed (prop_name, check) (scenario_name, scenario) =
  let name =
    Printf.sprintf "%s: %s on %s" (Registry.name packed) prop_name scenario_name
  in
  Alcotest.test_case name `Slow (fun () ->
      match check packed scenario with
      | Ok () -> ()
      | Error reason -> Alcotest.failf "%s: %s" name reason)

let suite_for packed =
  let props =
    (* EGP's silent stable loops after churn are documented behaviour:
       the fail/restore property does not apply to it. *)
    List.filter
      (fun (name, _) -> not (Registry.name packed = "egp" && name = "survives fail/restore"))
      Properties.all
  in
  ( Registry.name packed,
    List.concat_map (fun prop -> List.map (case packed prop) (scenarios packed)) props )

let () = Alcotest.run "conformance" (List.map suite_for Registry.all)

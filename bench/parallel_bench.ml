(* BENCH_parallel.json generator: the sharded-engine scaling benchmark.

   One budget-capped link-state convergence per (size, shard-count)
   cell, timed on the wall clock. Event and message counts must come
   out identical across the shard axis — the engine's equivalence
   contract, which bench_check enforces on the emitted document — so
   the only thing the shard axis may change is the wall clock. The
   speedup column is relative to the shards=1 row of the same size and
   is only meaningful when the measuring host has at least as many
   cores as shards (the document records the host's core count). *)

module J = Pr_util.Json
module PB = Pr_campaign.Parallel_bench

let ints_of_string s = List.map int_of_string (String.split_on_char ',' s)

let () =
  let sizes = ref [ 400; 10_000 ] in
  let shards = ref [ 1; 2; 4; 8 ] in
  let seed = ref 42 in
  let out = ref "BENCH_parallel.json" in
  let gate_max = ref 400 in
  let max_events = ref 5_000_000 in
  Arg.parse
    [
      ("--sizes", Arg.String (fun s -> sizes := ints_of_string s), "comma-separated AD counts");
      ("--shards", Arg.String (fun s -> shards := ints_of_string s), "comma-separated shard counts");
      ("--seed", Arg.Set_int seed, "scenario seed");
      ("--out", Arg.Set_string out, "output JSON file");
      ("--max-events", Arg.Set_int max_events, "per-cell event budget");
      ( "--gate-max",
        Arg.Set_int gate_max,
        "mark rows at or below this size as bench-diff gate rows" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "parallel_bench [--sizes=N,N] [--shards=N,N] [--seed=N] [--out=FILE]";
  let packed =
    match Pr_core.Registry.find_opt "link-state" with
    | Some p -> p
    | None -> failwith "link-state not registered"
  in
  let rows =
    List.concat_map
      (fun size ->
        (* Sized so the gate rows run to full quiescence — the sharded
           engine checks its budget at window boundaries, so a
           truncated run's cut point depends on the shard count — while
           the 10^4-AD cells measure a capped slab of flooding work
           (link-state at that scale does not quiesce in bench time;
           the rows record converged=false and speedup is a throughput
           ratio, which stays comparable across unequal cut points). *)
        let max_events = Stdlib.min !max_events (size * 1000) in
        let base = ref None in
        List.map
          (fun sh ->
            Printf.eprintf "parallel_bench: size %d, %d shard(s)...\n%!" size sh;
            let r = PB.measure packed ~seed:!seed ~target_ads:size ~shards:sh ~max_events in
            let speedup =
              match !base with
              | None ->
                base := Some r.PB.events_per_sec;
                1.0
              | Some b -> if b > 0.0 then r.PB.events_per_sec /. b else 0.0
            in
            Printf.eprintf
              "parallel_bench:   events=%d msgs=%d wall=%.3fs (%.0f ev/s, speedup %.2fx)\n%!"
              r.PB.events r.PB.messages r.PB.wall_s r.PB.events_per_sec speedup;
            PB.row_json ~speedup ~gate:(size <= !gate_max) r)
          !shards)
      !sizes
  in
  let doc =
    PB.doc_json ~protocol:"link-state" ~seed:!seed
      ~cores:(Domain.recommended_domain_count ())
      rows
  in
  let oc = open_out !out in
  output_string oc (J.to_string_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "parallel_bench: wrote %s (%d rows)\n" !out (List.length rows)

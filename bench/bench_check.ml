(* Well-formedness check for benchmark JSON documents: parses with the
   in-repo JSON reader, dispatches on the top-level "benchmark"
   identity, and validates the schema the tracking tooling relies on.

   - "route_synthesis_scaling" (bench/main.exe synth --json): identity
     fields, a non-empty Spf scaling table, the restrictive-policy
     synthesis section, and the delta-SPF / hierarchical-synthesis
     section, each with positive timings on every row.
   - "route_server_serving" (prx serve --out): per-size serving rows
     with positive load/latency/diagram figures and zero
     admission-agreement failures.

   Run from dune's runtest alias over both the smoke outputs and the
   committed BENCH_synthesis.json / BENCH_serve.json baselines. *)

module J = Pr_util.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let number = function
  | J.Int v -> Some (float_of_int v)
  | J.Float v -> Some v
  | _ -> None

let check_rows file ~section ~fields rows =
  if rows = [] then fail "%s: %s: empty results" file section;
  List.iteri
    (fun i row ->
      List.iter
        (fun field ->
          match Option.bind (J.member field row) number with
          | Some v when v > 0.0 -> ()
          | Some _ -> fail "%s: %s[%d]: non-positive %S" file section i field
          | None -> fail "%s: %s[%d]: missing or non-numeric %S" file section i field)
        fields)
    rows

let rows_of file ~section doc name =
  match Option.bind (J.member name doc) (fun v -> Result.to_option (J.to_list v)) with
  | Some l -> l
  | None -> fail "%s: %s: missing %S list" file section name

let check_synthesis_file file doc =
  (match J.member "kernel" doc with
  | Some (J.String _) -> ()
  | _ -> fail "%s: missing \"kernel\"" file);
  check_rows file ~section:"results"
    ~fields:
      [ "target_ads"; "ads"; "links"; "sources"; "reps"; "ns_per_op"; "live_words" ]
    (rows_of file ~section:"top" doc "results");
  let policy =
    match J.member "policy_synthesis" doc with
    | Some p -> p
    | None -> fail "%s: missing \"policy_synthesis\" section" file
  in
  (match J.member "kernel" policy with
  | Some (J.String _) -> ()
  | _ -> fail "%s: policy_synthesis: missing \"kernel\"" file);
  check_rows file ~section:"policy_synthesis.results"
    ~fields:
      [
        "target_ads";
        "ads";
        "links";
        "flows";
        "interpreted_ns_per_route";
        "compiled_ns_per_route";
        "speedup";
      ]
    (rows_of file ~section:"policy_synthesis" policy "results");
  let delta =
    match J.member "delta" doc with
    | Some d -> d
    | None -> fail "%s: missing \"delta\" section" file
  in
  (match J.member "kernel" delta with
  | Some (J.String _) -> ()
  | _ -> fail "%s: delta: missing \"kernel\"" file);
  check_rows file ~section:"delta.results"
    ~fields:
      [
        "target_ads";
        "ads";
        "links";
        "sources";
        "events";
        "full_ns_per_event";
        "incremental_ns_per_event";
        "speedup";
        "clusters";
        "hier_stretch_mean";
        "hier_stretch_max";
        "hier_table_mean";
        "hier_route_ns";
        "pairs";
      ]
    (rows_of file ~section:"delta" delta "results")

(* prx serve --out documents: every row must carry positive sizing,
   throughput, latency and diagram-shape figures (counters that can
   legitimately be zero — hits, evictions, no-routes — are not
   required positive), and the in-run health checks must be clean:
   agreement checks ran and none failed. *)
let check_serve_file file doc =
  (match J.member "kernel" doc with
  | Some (J.String _) -> ()
  | _ -> fail "%s: missing \"kernel\"" file);
  (match J.member "plan" doc with
  | Some (J.String _) -> ()
  | _ -> fail "%s: missing \"plan\"" file);
  let rows = rows_of file ~section:"top" doc "results" in
  check_rows file ~section:"results"
    ~fields:
      [
        "target_ads";
        "ads";
        "links";
        "queries";
        "answered";
        "qps";
        "p50_ns";
        "p99_ns";
        "admit_ns";
        "spec_admit_ns";
        "admit_probes";
        "build_ns";
        "rebuilds";
        "rebuilt_ads";
        "diagram_nodes";
        "diagram_preds";
        "agreement_checks";
      ]
    rows;
  List.iteri
    (fun i row ->
      (match Option.bind (J.member "agreement_failures" row) number with
      | Some 0.0 -> ()
      | Some v -> fail "%s: results[%d]: %g admission disagreements" file i v
      | None -> fail "%s: results[%d]: missing \"agreement_failures\"" file i);
      match Option.bind (J.member "handle_hit_rate" row) number with
      | Some v when v >= 0.0 && v <= 1.0 -> ()
      | Some v -> fail "%s: results[%d]: handle_hit_rate %g outside [0,1]" file i v
      | None -> fail "%s: results[%d]: missing \"handle_hit_rate\"" file i)
    rows

(* bench/parallel_bench.exe documents: one row per (size, shard count)
   with positive sizing/throughput figures, and — the sharded engine's
   determinism contract — identical event and message counts across
   every shard count of the same size, for rows that ran to
   convergence. Budget-truncated rows (converged=false) are exempt:
   the sharded engine checks its event budget at window boundaries, so
   the cut point legitimately depends on the shard count there. At
   least one row must be gate-marked so `prx bench diff` has something
   cheap to re-run. *)
let check_parallel_file file doc =
  (match J.member "protocol" doc with
  | Some (J.String _) -> ()
  | _ -> fail "%s: missing \"protocol\"" file);
  (match Option.bind (J.member "cores" doc) number with
  | Some v when v >= 1.0 -> ()
  | _ -> fail "%s: missing or non-positive \"cores\"" file);
  let rows = rows_of file ~section:"top" doc "results" in
  check_rows file ~section:"results"
    ~fields:
      [ "target_ads"; "shards"; "max_events"; "events"; "messages"; "wall_s"; "events_per_sec" ]
    rows;
  let by_size = Hashtbl.create 8 in
  let gated = ref 0 in
  List.iteri
    (fun i row ->
      (match J.member "gate" row with
      | Some (J.Bool b) -> if b then incr gated
      | _ -> fail "%s: results[%d]: missing \"gate\"" file i);
      let converged =
        match J.member "converged" row with
        | Some (J.Bool b) -> b
        | _ -> fail "%s: results[%d]: missing \"converged\"" file i
      in
      if converged then begin
        let num field = Option.get (Option.bind (J.member field row) number) in
        let size = num "target_ads" in
        let counts = (num "events", num "messages") in
        match Hashtbl.find_opt by_size size with
        | None -> Hashtbl.replace by_size size (i, counts)
        | Some (j, prior) ->
          if prior <> counts then
            fail
              "%s: results[%d] disagrees with results[%d] on (events, messages) at \
               size %g: shard counts must not change a converged simulation"
              file i j size
      end)
    rows;
  if !gated = 0 then fail "%s: no gate-marked row for bench diff" file

let check_file file =
  let doc =
    match J.parse (read_file file) with
    | Ok doc -> doc
    | Error e -> fail "%s: parse error: %s" file e
  in
  match J.member "benchmark" doc with
  | Some (J.String "route_synthesis_scaling") -> check_synthesis_file file doc
  | Some (J.String "route_server_serving") -> check_serve_file file doc
  | Some (J.String "parallel_engine") -> check_parallel_file file doc
  | Some (J.String other) -> fail "%s: unknown \"benchmark\" identity %S" file other
  | _ -> fail "%s: missing \"benchmark\" identity" file

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then fail "usage: bench_check FILE.json ...";
  List.iter check_file files;
  Printf.printf "bench_check: %d file(s) well-formed\n" (List.length files)

(* The 10^5-AD scale smoke: proves on every test run that the paper's
   target internet size (section 2.2 talks of "tens of thousands" of
   ADs) converges and synthesizes routes inside a wall-clock budget.

   Full flooding at 10^5 ADs is off the table by construction — every
   AD holding every LSA is the O(n^2) state bill the paper's section 6
   worries about — so the smoke exercises the two mechanisms this
   repo adds for that scale:

   - hierarchical synthesis (Hierarchy): the link-state protocol
     converges over the ~sqrt(n)-node cluster graph, and full routes
     are stitched from cluster-level + intra-cluster trees;
   - incremental delta-SPF (Spf_delta): single-link events repair a
     retained tree in O(affected region) instead of O(n).

   Exits non-zero if any structural check fails or the whole run
   overruns its budget (--budget=SECONDS, default 150). *)

module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Path = Pr_topology.Path
module Generator = Pr_topology.Generator
module Spf = Pr_topology.Spf
module Spf_delta = Pr_topology.Spf_delta
module Hierarchy = Pr_topology.Hierarchy
module Config = Pr_policy.Config
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("scale_smoke: " ^ s); exit 1) fmt

let budget =
  Array.to_list Sys.argv
  |> List.find_map (fun a ->
         let prefix = "--budget=" in
         if String.starts_with ~prefix a then
           float_of_string_opt
             (String.sub a (String.length prefix) (String.length a - String.length prefix))
         else None)
  |> Option.value ~default:150.0

let () =
  let t0 = Unix.gettimeofday () in
  let g = Generator.generate (Rng.create 211) (Generator.scaled ~target_ads:100_000) in
  let n = Graph.n g in
  if n < 90_000 then fail "generator fell short of 10^5 ADs: %d" n;
  if not (Graph.is_connected g) then fail "generated internet is disconnected";
  let t_gen = Unix.gettimeofday () -. t0 in
  (* Hierarchical synthesis: converge the link-state protocol over the
     cluster graph, then stitch full routes on the physical one. *)
  let h = Hierarchy.build g ~cluster_of:(Hierarchy.clusters_of_levels g) in
  let cg = Hierarchy.cluster_graph h in
  let (Registry.Packed (module P)) = Registry.find "link-state" in
  let module R = Runner.Make (P) in
  let r = R.setup cg (Config.defaults cg) in
  let c = R.converge ~max_events:20_000_000 r in
  if not c.Runner.converged then
    fail "link-state did not converge on the %d-cluster graph" (Graph.n cg);
  let t_conv = Unix.gettimeofday () -. t0 in
  (* Sample routes from two sources: every one must be delivered,
     loop-free, and no shorter than the exact distance. *)
  let rng = Rng.create 227 in
  let stretches = ref [] in
  for _ = 1 to 2 do
    let src = Rng.int rng n in
    let exact = Spf.tree g ~src in
    for _ = 1 to 32 do
      let dst = Rng.int rng n in
      if dst <> src then
        match Hierarchy.route h ~src ~dst with
        | None -> fail "no hierarchical route %d -> %d" src dst
        | Some p ->
          if not (Path.is_valid g p) then fail "invalid route %d -> %d" src dst;
          if Path.source p <> src || Path.destination p <> dst then
            fail "route endpoints wrong for %d -> %d" src dst;
          let cost = Hierarchy.route_cost h p in
          if cost < exact.Spf.dist.(dst) then
            fail "route %d -> %d beats the shortest path" src dst;
          stretches :=
            (float_of_int cost /. float_of_int exact.Spf.dist.(dst)) :: !stretches
    done
  done;
  let t_routes = Unix.gettimeofday () -. t0 in
  (* Incremental delta-SPF at full scale: a batch of single-link
     events on a retained tree must land back on the static tree. *)
  let d = Spf_delta.create g ~src:0 in
  let m = Graph.num_links g in
  for i = 0 to 31 do
    let lid = i * m / 32 in
    Spf_delta.set_link d lid ~up:false;
    Spf_delta.set_link d lid ~up:true
  done;
  (match Spf_delta.self_check d with
  | Ok () -> ()
  | Error e -> fail "Spf_delta self-check failed: %s" e);
  if (Spf_delta.to_tree d).Spf.dist <> (Spf.tree g ~src:0).Spf.dist then
    fail "Spf_delta diverged from the from-scratch tree";
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "scale_smoke: %d ADs, %d links; %d clusters (graph %d/%d); converged in %d events; \
     64 routes ok, stretch mean %.2f max %.2f; delta repaired %d nodes over %d events; \
     gen %.1fs conv %.1fs routes %.1fs total %.1fs (budget %.0fs)\n"
    n m (Hierarchy.num_clusters h) (Graph.n cg) (Graph.num_links cg) c.Runner.events
    (Stats.mean !stretches)
    (List.fold_left Stdlib.max 1.0 !stretches)
    (Spf_delta.nodes_repaired d) (Spf_delta.events d) t_gen (t_conv -. t_gen)
    (t_routes -. t_conv) elapsed budget;
  if elapsed > budget then fail "overran the wall-clock budget: %.1fs > %.0fs" elapsed budget

(* The benchmark harness: regenerates every exhibit of the paper's
   evaluation — Table 1, Figure 1, and the derived experiments E1..E10
   that quantify the paper's qualitative claims (see DESIGN.md section 4
   and EXPERIMENTS.md for the claim-by-claim index).

   Usage:
     dune exec bench/main.exe                 # all experiment tables
     dune exec bench/main.exe -- t1 e2 e8     # a subset
     dune exec bench/main.exe -- --bechamel   # also run Bechamel
                                              # micro-benchmarks *)

module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Texttable = Pr_util.Texttable
module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Partial_order = Pr_topology.Partial_order
module Spf = Pr_topology.Spf
module Spf_delta = Pr_topology.Spf_delta
module Hierarchy = Pr_topology.Hierarchy
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Flow = Pr_policy.Flow
module Gen = Pr_policy.Gen
module Config = Pr_policy.Config
module Validate = Pr_policy.Validate
module Metrics = Pr_sim.Metrics
module Packet = Pr_proto.Packet
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Experiment = Pr_core.Experiment
module Design_space = Pr_core.Design_space

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

let note fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* T1: the design space (paper Table 1)                                *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1. Design space for inter-AD routing (paper Table 1, section 5)";
  print_string (Design_space.render ())

(* ------------------------------------------------------------------ *)
(* F1: the example internet (paper Figure 1)                           *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "F1. Example internet topology (paper Figure 1, section 2.1)";
  let g = Figure1.graph () in
  let t =
    Texttable.create
      ~columns:
        [ ("property", Texttable.Left); ("paper", Texttable.Left); ("built", Texttable.Left) ]
  in
  let row p expected actual = Texttable.add_row t [ p; expected; actual ] in
  row "backbone networks" "2 (interconnected)" "2";
  row "regional networks" "several per backbone"
    (Texttable.cell_int (List.length Figure1.regionals));
  row "campus networks" "several per regional"
    (Texttable.cell_int (List.length Figure1.campuses));
  List.iter
    (fun (k, c) -> row (Link.kind_to_string k ^ " links") "present" (Texttable.cell_int c))
    (Graph.count_links_by_kind g);
  row "multihomed stub" "yes"
    (Printf.sprintf "AD %d (two regionals)" Figure1.multihomed_campus);
  row "bypass stub-to-backbone" "yes"
    (Printf.sprintf "AD %d -> backbone %d" Figure1.bypass_campus Figure1.backbone_2);
  row "connected" "yes" (string_of_bool (Graph.is_connected g));
  row "contains cycles" "yes (lateral + bypass)" (string_of_bool (Graph.has_cycle g));
  Texttable.print t;
  print_newline ();
  print_string (Figure1.describe ())

(* ------------------------------------------------------------------ *)
(* E1: EGP's topology restriction (paper section 3)                    *)
(* ------------------------------------------------------------------ *)

let e1_egp_cycles () =
  section "E1. EGP requires a cycle-free topology (section 3)";
  note
    "Random 24-AD internets with increasing numbers of cycle-creating extra\n\
     links; after convergence one cycle link is failed and the protocol\n\
     reacts. DV (which tolerates cycles) is the control. Stretch is hop\n\
     count relative to the shortest path on the surviving topology.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("extra links", Texttable.Right);
          ("protocol", Texttable.Left);
          ("delivered", Texttable.Right);
          ("looped", Texttable.Right);
          ("dropped", Texttable.Right);
          ("mean stretch", Texttable.Right);
        ]
  in
  let n = 24 in
  let run_one (Registry.Packed (module P)) g =
    let module R = Runner.Make (P) in
    let r = R.setup g (Config.defaults g) in
    ignore (R.converge ~max_events:5_000_000 r);
    let lateral =
      Graph.fold_links g ~init:None ~f:(fun acc l ->
          if acc = None && l.Link.kind = Link.Lateral then Some l.Link.id else acc)
    in
    (match lateral with
    | Some lid ->
      R.fail_link r lid;
      ignore (R.converge ~max_events:5_000_000 r)
    | None -> ());
    let delivered = ref 0 and looped = ref 0 and dropped = ref 0 in
    let stretches = ref [] in
    for src = 0 to n - 1 do
      let dist = Graph.bfs_hops g src in
      for dst = 0 to n - 1 do
        if src <> dst then
          match R.send_flow r (Flow.make ~src ~dst ()) with
          | Forwarding.Delivered { path; _ } ->
            incr delivered;
            if dist.(dst) > 0 then
              stretches :=
                (float_of_int (Path.hops path) /. float_of_int dist.(dst)) :: !stretches
          | Forwarding.Looped _ -> incr looped
          | Forwarding.Dropped _ | Forwarding.Prep_failed _ -> incr dropped
      done
    done;
    (!delivered, !looped, !dropped, Stats.mean !stretches)
  in
  List.iter
    (fun extra ->
      let g = Generator.random_mesh (Rng.create (100 + extra)) ~n ~extra_links:extra in
      List.iter
        (fun name ->
          let delivered, looped, dropped, stretch = run_one (Registry.find name) g in
          Texttable.add_row t
            [
              Texttable.cell_int extra;
              name;
              Printf.sprintf "%d/%d" delivered (n * (n - 1));
              Texttable.cell_int looped;
              Texttable.cell_int dropped;
              Texttable.cell_float stretch;
            ])
        [ "egp"; "dv-plain" ];
      Texttable.add_separator t)
    [ 0; 2; 4; 8; 16 ];
  Texttable.print t;
  note
    "\nExpected shape: on the tree (0 extra links) EGP matches DV; as cycles\n\
     are added, EGP misroutes (loops, drops, stretch) while DV stays correct.\n"

(* ------------------------------------------------------------------ *)
(* E2: convergence and count-to-infinity (sections 4.3, 5.1.1)         *)
(* ------------------------------------------------------------------ *)

(* Triangle of transit ADs with a stub hanging off one corner: after
   the stub link fails, plain DV counts to infinity through the stale
   routes held around the triangle. *)
let count_to_infinity_graph () =
  let ads =
    Array.init 4 (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id)
          ~klass:(if id = 3 then Ad.Stub else Ad.Hybrid)
          ~level:(if id = 3 then Ad.Campus else Ad.Metro))
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 Link.Lateral;
      Link.make ~id:1 ~a:1 ~b:2 Link.Lateral;
      Link.make ~id:2 ~a:0 ~b:2 Link.Lateral;
      Link.make ~id:3 ~a:2 ~b:3 Link.Hierarchical;
    |]
  in
  Graph.create ads links

let e2_convergence () =
  section
    "E2. Convergence after link failure: count-to-infinity vs its fixes (4.3, 5.1.1)";
  note
    "Left: triangle + stub, failing the stub link (the classic bounce).\n\
     Right: 56-AD hierarchical internet, failing one regional link.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("tri msgs", Texttable.Right);
          ("tri time", Texttable.Right);
          ("hier msgs", Texttable.Right);
          ("hier time", Texttable.Right);
          ("converged", Texttable.Left);
        ]
  in
  let tri = count_to_infinity_graph () in
  let tri_scenario =
    { Scenario.label = "triangle"; graph = tri; config = Config.defaults tri; seed = 0 }
  in
  let scenario = Scenario.hierarchical ~seed:7 () in
  let hier = scenario.Scenario.graph in
  let hier_link =
    Graph.fold_links hier ~init:0 ~f:(fun acc l ->
        if
          l.Link.kind = Link.Hierarchical
          && (Graph.ad hier l.Link.a).Ad.level = Ad.Regional
        then l.Link.id
        else acc)
  in
  List.iter
    (fun name ->
      let packed = Registry.find name in
      let probe_tri = Experiment.convergence_after_failure packed tri_scenario ~link:3 in
      let probe_hier =
        Experiment.convergence_after_failure packed scenario ~link:hier_link
      in
      Texttable.add_row t
        [
          name;
          Texttable.cell_int probe_tri.Experiment.after_failure_messages;
          Texttable.cell_float ~decimals:1 probe_tri.Experiment.after_failure_time;
          Texttable.cell_int probe_hier.Experiment.after_failure_messages;
          Texttable.cell_float ~decimals:1 probe_hier.Experiment.after_failure_time;
          string_of_bool
            (probe_tri.Experiment.after_failure_converged
            && probe_hier.Experiment.after_failure_converged);
        ])
    [ "dv-plain"; "dv-split-horizon"; "ecma"; "idrp"; "link-state"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note
    "\nExpected shape: dv-plain bounces (large message count and time on the\n\
     triangle); split horizon helps; ECMA's up/down rule and IDRP's AD path\n\
     suppress the bounce; link-state floods are cheap and fast.\n"

(* ------------------------------------------------------------------ *)
(* E3: ECMA expressiveness (section 5.1.1)                             *)
(* ------------------------------------------------------------------ *)

let e3_ecma_expressiveness () =
  section "E3. A single partial ordering cannot express arbitrary policies (5.1.1)";
  note
    "(a) Probability that a random set of k ordering constraints over 50 ADs\n\
     embeds in one partial order (200 trials per k).\n";
  let t =
    Texttable.create
      ~columns:[ ("constraints", Texttable.Right); ("embeddable", Texttable.Right) ]
  in
  let n = 50 in
  let rng = Rng.create 31 in
  List.iter
    (fun k ->
      let trials = 200 in
      let ok = ref 0 in
      for _ = 1 to trials do
        let cs =
          List.init k (fun _ ->
              let a = Rng.int rng n in
              let rec other () =
                let b = Rng.int rng n in
                if b = a then other () else b
              in
              { Partial_order.above = a; below = other () })
        in
        if Partial_order.embeddable ~n cs <> None then incr ok
      done;
      Texttable.add_row t
        [
          Texttable.cell_int k;
          Texttable.cell_pct (float_of_int !ok /. float_of_int trials);
        ])
    [ 5; 10; 25; 50; 100; 200; 400 ];
  Texttable.print t;
  note
    "\n(b) Source-specific policies projected onto ECMA vs protocols that carry\n\
     explicit policy terms (56-AD internet, 120 flows, source-specific\n\
     granularity, restrictiveness 0.5):\n";
  let policy =
    { Gen.default with restrictiveness = 0.5; granularity = Gen.Source_specific }
  in
  let scenario = Scenario.hierarchical ~policy ~seed:17 () in
  let rng = Rng.create 18 in
  let flows = Scenario.flows scenario ~rng ~count:120 () in
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("delivered", Texttable.Right);
          ("policy violations", Texttable.Right);
          ("avail loss", Texttable.Right);
        ]
  in
  List.iter
    (fun name ->
      let r = Experiment.evaluate (Registry.find name) scenario ~flows () in
      Texttable.add_row t
        [
          name;
          Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.flows;
          Texttable.cell_int r.Experiment.transit_violations;
          Texttable.cell_int r.Experiment.availability_loss;
        ])
    [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note
    "\nExpected shape: ECMA delivers but violates the source-specific terms it\n\
     cannot express; the PT-carrying designs have zero violations.\n"

(* ------------------------------------------------------------------ *)
(* E4: IDRP and policy granularity (section 5.2.1)                     *)
(* ------------------------------------------------------------------ *)

let e4_idrp_granularity () =
  section "E4. IDRP: routing state vs policy granularity (5.2.1)";
  note
    "Figure-1 internet (14 ADs), 60 random-class flows. 'per-source' is the\n\
     variant that replicates routes per (QOS, UCI, source) to recover\n\
     availability — the table/byte blow-up the paper predicts.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("granularity", Texttable.Left);
          ("variant", Texttable.Left);
          ("tbl total", Texttable.Right);
          ("tbl max", Texttable.Right);
          ("update kbytes", Texttable.Right);
          ("delivered", Texttable.Right);
          ("avail loss", Texttable.Right);
          ("viol", Texttable.Right);
        ]
  in
  List.iter
    (fun granularity ->
      let policy = { Gen.default with restrictiveness = 0.6; granularity } in
      let scenario = Scenario.figure1 ~policy ~seed:23 () in
      let rng = Rng.create 29 in
      let flows = Scenario.flows scenario ~rng ~count:60 () in
      List.iter
        (fun name ->
          let r = Experiment.evaluate (Registry.find name) scenario ~flows () in
          Texttable.add_row t
            [
              Gen.granularity_to_string granularity;
              name;
              Texttable.cell_int r.Experiment.table_total;
              Texttable.cell_int r.Experiment.table_max;
              Texttable.cell_float ~decimals:1 (float_of_int r.Experiment.bytes /. 1024.);
              Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.flows;
              Texttable.cell_int r.Experiment.availability_loss;
              Texttable.cell_int r.Experiment.transit_violations;
            ])
        [ "idrp"; "idrp-scoped"; "idrp-per-source" ];
      Texttable.add_separator t)
    Gen.all_granularities;
  Texttable.print t;
  note
    "\nExpected shape: per-source recovers any availability the coarse classes\n\
     lose, at roughly (number of source ADs) x the routing state and bytes.\n"

(* ------------------------------------------------------------------ *)
(* E5: the transit computation burden of LS hop-by-hop (section 5.3)   *)
(* ------------------------------------------------------------------ *)

let e5_lshbh_burden () =
  section "E5. Per-source route computation burden on transit ADs (5.3)";
  note
    "56-AD internet, 300 flows. Computation work units (states settled in\n\
     route searches) split by where they happen. ORWG moves synthesis to the\n\
     source's route server; LS hop-by-hop repeats it at every AD on the path.\n";
  let scenario = Scenario.hierarchical ~seed:41 () in
  let g = scenario.Scenario.graph in
  let rng = Rng.create 43 in
  let flows = Scenario.flows scenario ~rng ~count:300 () in
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("total comp", Texttable.Right);
          ("at transit ADs", Texttable.Right);
          ("at host ADs", Texttable.Right);
          ("busiest AD", Texttable.Right);
          ("tbl max", Texttable.Right);
        ]
  in
  let eval name =
    let (Registry.Packed (module P)) = Registry.find name in
    let module R = Runner.Make (P) in
    let r = R.setup g scenario.Scenario.config in
    ignore (R.converge r);
    List.iter (fun f -> ignore (R.send_flow r f)) flows;
    let m = R.metrics r in
    let transit = Graph.transit_ids g in
    let hosts = Graph.host_ids g in
    let sum ids = List.fold_left (fun acc ad -> acc + Metrics.computations_of m ad) 0 ids in
    let busiest =
      List.fold_left
        (fun acc ad -> Stdlib.max acc (Metrics.computations_of m ad))
        0
        (List.init (Graph.n g) (fun i -> i))
    in
    Texttable.add_row t
      [
        name;
        Texttable.cell_int (Metrics.computations m);
        Texttable.cell_int (sum transit);
        Texttable.cell_int (sum hosts);
        Texttable.cell_int busiest;
        Texttable.cell_int (R.max_table_entries r);
      ]
  in
  List.iter eval [ "link-state"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note
    "\nExpected shape: ls-hbh-pt concentrates computation on transit ADs (every\n\
     AD on the path repeats the source's computation); ORWG's transit ADs only\n\
     validate setups, so its work sits at the host (source) ADs.\n"

(* ------------------------------------------------------------------ *)
(* E6: ORWG mechanics (section 5.4.1)                                  *)
(* ------------------------------------------------------------------ *)

let e6_orwg_overhead () =
  section "E6. ORWG route setup, handles and header overhead (5.4.1)";
  note
    "56-AD internet; 100 distinct flows, 5 packets each. Handles replace the\n\
     source route on packets after setup.\n";
  let scenario = Scenario.hierarchical ~seed:53 () in
  let g = scenario.Scenario.graph in
  let rng = Rng.create 59 in
  let flows = Scenario.flows scenario ~rng ~count:100 () in
  let t =
    Texttable.create
      ~columns:
        [
          ("variant", Texttable.Left);
          ("setups", Texttable.Right);
          ("cache hits", Texttable.Right);
          ("mean setup hops", Texttable.Right);
          ("mean header bytes", Texttable.Right);
          ("PG state entries", Texttable.Right);
          ("PG validations", Texttable.Right);
        ]
  in
  let eval name (module O : Pr_orwg.Orwg.S) =
    let module R = Runner.Make (O) in
    let r = R.setup g scenario.Scenario.config in
    ignore (R.converge r);
    let setups = ref 0 and hits = ref 0 in
    let setup_hops = ref [] and headers = ref [] in
    List.iter
      (fun f ->
        for _ = 1 to 5 do
          match R.send_flow r f with
          | Forwarding.Delivered { prep; header_bytes; _ } ->
            if prep.Packet.cache_hit then incr hits
            else begin
              incr setups;
              setup_hops := float_of_int prep.Packet.setup_hops :: !setup_hops
            end;
            headers := float_of_int header_bytes :: !headers
          | _ -> ()
        done)
      flows;
    let pg_total =
      List.fold_left
        (fun acc ad -> acc + O.pg_entries (R.protocol r) ad)
        0
        (List.init (Graph.n g) (fun i -> i))
    in
    let validations =
      List.fold_left
        (fun acc ad -> acc + O.validations (R.protocol r) ad)
        0
        (List.init (Graph.n g) (fun i -> i))
    in
    Texttable.add_row t
      [
        name;
        Texttable.cell_int !setups;
        Texttable.cell_int !hits;
        Texttable.cell_float (Stats.mean !setup_hops);
        Texttable.cell_float (Stats.mean !headers);
        Texttable.cell_int pg_total;
        Texttable.cell_int validations;
      ]
  in
  eval "orwg (handles)" (module Pr_orwg.Orwg.Orwg);
  eval "orwg-no-handles" (module Pr_orwg.Orwg.No_handles);
  Texttable.print t;
  note
    "\n(b) Source route-selection control across the four design points\n\
     (restrictive source policies on every host):\n";
  let policy = { Gen.default with restrictiveness = 0.5; source_policy_prob = 1.0 } in
  let scenario = Scenario.hierarchical ~policy ~seed:61 () in
  let rng = Rng.create 67 in
  let flows = Scenario.flows scenario ~rng ~count:120 () in
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("delivered", Texttable.Right);
          ("source-policy violations", Texttable.Right);
        ]
  in
  List.iter
    (fun name ->
      let r = Experiment.evaluate (Registry.find name) scenario ~flows () in
      Texttable.add_row t
        [
          name;
          Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.flows;
          Texttable.cell_int r.Experiment.source_violations;
        ])
    [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note "\nExpected shape: only the source-routing design honors source policies.\n"

(* ------------------------------------------------------------------ *)
(* E7: route synthesis strategies (section 6, open issue 1)            *)
(* ------------------------------------------------------------------ *)

let e7_synthesis () =
  section "E7. Route synthesis: precomputation vs on-demand vs hybrid (section 6)";
  note
    "56-AD internet; workload of 152 packets drawn from 40 distinct\n\
     destination/class pairs. Precompute installs policy routes for host\n\
     pairs ahead of traffic.\n";
  let scenario = Scenario.hierarchical ~seed:71 () in
  let g = scenario.Scenario.graph in
  let module O = Pr_orwg.Orwg.Orwg in
  let module R = Runner.Make (O) in
  let rng = Rng.create 73 in
  let base_flows = Scenario.flows scenario ~rng ~count:40 ~classes:false () in
  let workload = List.concat (List.init 4 (fun _ -> Rng.sample rng 38 base_flows)) in
  let all_pairs = Scenario.all_host_pairs scenario in
  let t =
    Texttable.create
      ~columns:
        [
          ("strategy", Texttable.Left);
          ("precomputed", Texttable.Right);
          ("upfront comp", Texttable.Right);
          ("wl setups", Texttable.Right);
          ("wl cache hits", Texttable.Right);
          ("mean setup hops", Texttable.Right);
          ("total comp", Texttable.Right);
        ]
  in
  let run strategy precompute_list =
    let r = R.setup g scenario.Scenario.config in
    ignore (R.converge r);
    let before = Metrics.computations (R.metrics r) in
    let installed = O.precompute_flows (R.protocol r) precompute_list in
    let upfront = Metrics.computations (R.metrics r) - before in
    let setups = ref 0 and hits = ref 0 and hop_list = ref [] in
    List.iter
      (fun f ->
        match R.send_flow r f with
        | Forwarding.Delivered { prep; _ }
        | Forwarding.Dropped { prep; _ }
        | Forwarding.Looped { prep; _ }
        | Forwarding.Prep_failed { prep; _ } ->
          if prep.Packet.cache_hit then incr hits
          else if prep.Packet.failure = None then begin
            incr setups;
            hop_list := float_of_int prep.Packet.setup_hops :: !hop_list
          end)
      workload;
    Texttable.add_row t
      [
        strategy;
        Texttable.cell_int installed;
        Texttable.cell_int upfront;
        Texttable.cell_int !setups;
        Texttable.cell_int !hits;
        Texttable.cell_float (Stats.mean !hop_list);
        Texttable.cell_int (Metrics.computations (R.metrics r));
      ]
  in
  run "on-demand" [];
  let hybrid_rng = Rng.create 79 in
  run "hybrid (25% of pairs)" (Rng.sample hybrid_rng (List.length all_pairs / 4) all_pairs);
  run "precompute all pairs" all_pairs;
  Texttable.print t;
  note
    "\n(b) Pruning heuristic: search work to synthesize a route for every host\n\
     pair. The optimistic strategy searches over single ADs (ignoring\n\
     prev/next-hop terms), validates exactly, and falls back to the full\n\
     (AD, arrived-from) state search only on rejection:\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("synthesis", Texttable.Left);
          ("routes found", Texttable.Right);
          ("search work", Texttable.Right);
          ("work per route", Texttable.Right);
        ]
  in
  let synth_run name (module O : Pr_orwg.Orwg.S) =
    let module R = Runner.Make (O) in
    let r = R.setup g scenario.Scenario.config in
    ignore (R.converge r);
    let found = ref 0 in
    List.iter
      (fun f -> if Forwarding.delivered (R.send_flow r f) then incr found)
      all_pairs;
    let work = Metrics.computations (R.metrics r) in
    Texttable.add_row t
      [
        name;
        Printf.sprintf "%d/%d" !found (List.length all_pairs);
        Texttable.cell_int work;
        Texttable.cell_float (Stats.ratio (float_of_int work) (float_of_int !found));
      ]
  in
  synth_run "exact state search" (module Pr_orwg.Orwg.Orwg);
  synth_run "optimistic + exact fallback" (module Pr_orwg.Orwg.Pruned);
  Texttable.print t;
  note
    "\nExpected shape: precomputation trades a large upfront synthesis bill for\n\
     zero setup latency on the workload; hybrid sits in between; the\n\
     optimistic heuristic finds exactly the same routes for less search\n\
     work (section 6 calls for exactly these heuristics).\n"

(* ------------------------------------------------------------------ *)
(* E8: scaling (section 2.2)                                           *)
(* ------------------------------------------------------------------ *)

let e8_scaling () =
  section "E8. Scaling the internet: control traffic and state (2.2)";
  note "Initial convergence cost as the internet grows (no data traffic).\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("ADs", Texttable.Right);
          ("protocol", Texttable.Left);
          ("messages", Texttable.Right);
          ("kbytes", Texttable.Right);
          ("sim time", Texttable.Right);
          ("tbl max", Texttable.Right);
        ]
  in
  List.iter
    (fun target ->
      let scenario = Scenario.sized ~target_ads:target ~seed:83 () in
      let g = scenario.Scenario.graph in
      List.iter
        (fun name ->
          (* The path-vector RIB at 200 ADs exceeds a sensible budget:
             IDRP is measured up to 100, matching the paper's concern
             that fine state does not scale. *)
          if not (name = "idrp" && Graph.n g > 150) then begin
            let (Registry.Packed (module P)) = Registry.find name in
            let module R = Runner.Make (P) in
            let r = R.setup g scenario.Scenario.config in
            let c = R.converge ~max_events:30_000_000 r in
            Texttable.add_row t
              [
                Texttable.cell_int (Graph.n g);
                name;
                Texttable.cell_int c.Runner.messages;
                Texttable.cell_float ~decimals:0 (float_of_int c.Runner.bytes /. 1024.);
                Texttable.cell_float ~decimals:1 c.Runner.sim_time;
                Texttable.cell_int (R.max_table_entries r);
              ]
          end)
        [ "dv-plain"; "link-state"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
      Texttable.add_separator t)
    [ 25; 50; 100; 200 ];
  Texttable.print t;
  note
    "\nExpected shape: DV-family messages grow fastest; ECMA multiplies DV by\n\
     its QOS classes; IDRP bytes grow with path lengths and policy attributes\n\
     (omitted at 200 ADs — it no longer fits a reasonable budget, the paper's\n\
     point); the LS designs share flooding costs.\n"

(* ------------------------------------------------------------------ *)
(* E9: availability vs restrictiveness (sections 2.3 and 5)             *)
(* ------------------------------------------------------------------ *)

let e9_availability () =
  section "E9. Route availability and policy compliance vs restrictiveness (2.3, 5)";
  note
    "56-AD internet, 120 flows, source-specific granularity; sweeping how\n\
     restrictive AD policies are. Violations = delivered over a path some\n\
     transit AD's policy forbids; loss = a legal, source-acceptable route\n\
     exists but was not delivered.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("restrictiveness", Texttable.Right);
          ("protocol", Texttable.Left);
          ("delivered", Texttable.Right);
          ("viol", Texttable.Right);
          ("src viol", Texttable.Right);
          ("avail loss", Texttable.Right);
        ]
  in
  List.iter
    (fun r_level ->
      let policy = { Gen.default with restrictiveness = r_level } in
      let scenario = Scenario.hierarchical ~policy ~seed:89 () in
      let rng = Rng.create 97 in
      let flows = Scenario.flows scenario ~rng ~count:120 () in
      List.iter
        (fun name ->
          let r = Experiment.evaluate (Registry.find name) scenario ~flows () in
          Texttable.add_row t
            [
              Texttable.cell_float ~decimals:1 r_level;
              name;
              Printf.sprintf "%d/%d" r.Experiment.delivered r.Experiment.flows;
              Texttable.cell_int r.Experiment.transit_violations;
              Texttable.cell_int r.Experiment.source_violations;
              Texttable.cell_int r.Experiment.availability_loss;
            ])
        [ "dv-plain"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
      Texttable.add_separator t)
    [ 0.0; 0.2; 0.4; 0.6; 0.8 ];
  Texttable.print t;
  note
    "\nExpected shape: the baseline violates more as policies tighten; ECMA\n\
     violates what the ordering cannot express; IDRP trades violations for\n\
     loss; the LS+PT designs stay compliant, and only ORWG also satisfies\n\
     source policies.\n"

(* ------------------------------------------------------------------ *)
(* E10: forwarding loops during convergence (sections 2.1, 4.4)        *)
(* ------------------------------------------------------------------ *)

let e10_loops () =
  section "E10. Forwarding loops under churn: hop-by-hop vs source routing (4.4)";
  note
    "56-AD internet. A backbone link fails; forwarding is sampled while the\n\
     control plane is still reacting (after only 40 events), then again\n\
     after full reconvergence. Source-routed packets cannot loop.\n";
  let scenario = Scenario.hierarchical ~seed:101 () in
  let g = scenario.Scenario.graph in
  let rng = Rng.create 103 in
  let flows = Scenario.flows scenario ~rng ~count:200 () in
  let link =
    Graph.fold_links g ~init:0 ~f:(fun acc l ->
        if
          l.Link.kind = Link.Hierarchical
          && (Graph.ad g l.Link.a).Ad.level = Ad.Backbone
        then l.Link.id
        else acc)
  in
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("loops mid-conv", Texttable.Right);
          ("drops mid-conv", Texttable.Right);
          ("loops converged", Texttable.Right);
          ("delivered converged", Texttable.Right);
        ]
  in
  List.iter
    (fun name ->
      let (Registry.Packed (module P)) = Registry.find name in
      let module R = Runner.Make (P) in
      let r = R.setup g scenario.Scenario.config in
      ignore (R.converge r);
      (* Warm the data plane (ORWG setups, LS-HBH caches). *)
      List.iter (fun f -> ignore (R.send_flow r f)) flows;
      R.fail_link r link;
      ignore (R.converge ~max_events:40 r);
      let mid_loops = ref 0 and mid_drops = ref 0 in
      List.iter
        (fun f ->
          match R.send_flow r f with
          | Forwarding.Looped _ -> incr mid_loops
          | Forwarding.Dropped _ | Forwarding.Prep_failed _ -> incr mid_drops
          | Forwarding.Delivered _ -> ())
        flows;
      ignore (R.converge ~max_events:30_000_000 r);
      let post_loops = ref 0 and post_delivered = ref 0 in
      List.iter
        (fun f ->
          match R.send_flow r f with
          | Forwarding.Looped _ -> incr post_loops
          | Forwarding.Delivered _ -> incr post_delivered
          | Forwarding.Dropped _ | Forwarding.Prep_failed _ -> ())
        flows;
      Texttable.add_row t
        [
          name;
          Texttable.cell_int !mid_loops;
          Texttable.cell_int !mid_drops;
          Texttable.cell_int !post_loops;
          Printf.sprintf "%d/%d" !post_delivered (List.length flows);
        ])
    [ "dv-plain"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note
    "\nExpected shape: hop-by-hop designs may loop or blackhole transiently;\n\
     ORWG never loops — stale source routes fail fast and are re-synthesized\n\
     once the databases catch up. ORWG flows still undelivered after\n\
     reconvergence are source-policy refusals the oracle confirms: no\n\
     source-acceptable legal route survives the failure.\n"

(* ------------------------------------------------------------------ *)
(* E11: policy gateway state limitations (section 6, ablation)         *)
(* ------------------------------------------------------------------ *)

let e11_pg_state () =
  section "E11. Policy gateway state management and limitations (section 6)";
  note
    "56-AD internet; 250 distinct flows set up, then each sent once more.\n\
     Gateways hold at most N setup-state entries (LRU): packets on evicted\n\
     handles are dropped, the source is notified and re-sets-up.\n";
  let scenario = Scenario.hierarchical ~seed:113 () in
  let g = scenario.Scenario.graph in
  let t =
    Texttable.create
      ~columns:
        [
          ("PG capacity", Texttable.Left);
          ("pass-2 hits", Texttable.Right);
          ("evicted-handle drops", Texttable.Right);
          ("re-setups (pass 3)", Texttable.Right);
          ("total evictions", Texttable.Right);
          ("busiest PG entries", Texttable.Right);
        ]
  in
  let run label (module O : Pr_orwg.Orwg.S) =
    let module R = Runner.Make (O) in
    let rng = Rng.create 127 in
    let flows = Scenario.flows scenario ~rng ~count:250 () in
    let r = R.setup g scenario.Scenario.config in
    ignore (R.converge r);
    (* Pass 1: set everything up. *)
    List.iter (fun f -> ignore (R.send_flow r f)) flows;
    (* Pass 2: resend; bounded gateways have evicted old handles. *)
    let hits = ref 0 and evicted = ref 0 in
    List.iter
      (fun f ->
        match R.send_flow r f with
        | Forwarding.Delivered { prep; _ } -> if prep.Packet.cache_hit then incr hits
        | Forwarding.Dropped _ -> incr evicted
        | _ -> ())
      flows;
    (* Pass 3: the drops notified the sources; count the repair bill. *)
    let resetups = ref 0 in
    List.iter
      (fun f ->
        match R.send_flow r f with
        | Forwarding.Delivered { prep; _ } when not prep.Packet.cache_hit -> incr resetups
        | _ -> ())
      flows;
    let evictions =
      List.fold_left
        (fun acc ad -> acc + O.evictions (R.protocol r) ad)
        0
        (List.init (Graph.n g) (fun i -> i))
    in
    let busiest =
      List.fold_left
        (fun acc ad -> Stdlib.max acc (O.pg_entries (R.protocol r) ad))
        0
        (List.init (Graph.n g) (fun i -> i))
    in
    Texttable.add_row t
      [
        label;
        Texttable.cell_int !hits;
        Texttable.cell_int !evicted;
        Texttable.cell_int !resetups;
        Texttable.cell_int evictions;
        Texttable.cell_int busiest;
      ]
  in
  let module Pg8 = Pr_orwg.Orwg.Bounded_pg (struct
    let capacity = 8
  end) in
  let module Pg16 = Pr_orwg.Orwg.Bounded_pg (struct
    let capacity = 16
  end) in
  let module Pg32 = Pr_orwg.Orwg.Bounded_pg (struct
    let capacity = 32
  end) in
  let module Pg64 = Pr_orwg.Orwg.Bounded_pg (struct
    let capacity = 64
  end) in
  run "8" (module Pg8);
  run "16" (module Pg16);
  run "32" (module Pg32);
  run "64" (module Pg64);
  run "unbounded" (module Pr_orwg.Orwg.Orwg);
  Texttable.print t;
  note
    "\nExpected shape: below the working set, gateways thrash — every resend\n\
     drops once and pays a fresh setup; above it, behaviour matches the\n\
     unbounded gateway. The knee locates the state a PG actually needs,\n\
     the open question section 6 raises.\n"

(* ------------------------------------------------------------------ *)
(* E12: sustained churn (section 2.2)                                  *)
(* ------------------------------------------------------------------ *)

let e12_churn () =
  section "E12. Sustained topology churn: adaptivity without static routes (2.2)";
  note
    "56-AD internet; 15 cycles of (fail a random link, reconverge, sample\n\
     60 flows, restore, reconverge). Totals over the whole run.\n";
  let scenario = Scenario.hierarchical ~seed:131 () in
  let g = scenario.Scenario.graph in
  let t =
    Texttable.create
      ~columns:
        [
          ("protocol", Texttable.Left);
          ("control msgs", Texttable.Right);
          ("control kbytes", Texttable.Right);
          ("delivered", Texttable.Right);
          ("looped", Texttable.Right);
          ("violations", Texttable.Right);
          ("all converged", Texttable.Left);
        ]
  in
  List.iter
    (fun name ->
      let (Registry.Packed (module P)) = Registry.find name in
      let module R = Runner.Make (P) in
      let rng = Rng.create 137 in
      let flows_rng = Rng.create 139 in
      let r = R.setup g scenario.Scenario.config in
      ignore (R.converge r);
      let delivered = ref 0 and looped = ref 0 and total = ref 0 in
      let violations = ref 0 in
      let all_converged = ref true in
      for _ = 1 to 15 do
        let lid = Rng.int rng (Graph.num_links g) in
        R.fail_link r lid;
        let c1 = R.converge ~max_events:10_000_000 r in
        let flows = Scenario.flows scenario ~rng:flows_rng ~count:60 () in
        List.iter
          (fun f ->
            incr total;
            match R.send_flow r f with
            | Forwarding.Delivered { path; _ } ->
              incr delivered;
              if not (Validate.transit_legal g scenario.Scenario.config f path) then
                incr violations
            | Forwarding.Looped _ -> incr looped
            | _ -> ())
          flows;
        R.restore_link r lid;
        let c2 = R.converge ~max_events:10_000_000 r in
        if not (c1.Runner.converged && c2.Runner.converged) then all_converged := false
      done;
      let m = R.metrics r in
      Texttable.add_row t
        [
          name;
          Texttable.cell_int (Metrics.messages m);
          Texttable.cell_float ~decimals:0 (float_of_int (Metrics.bytes m) /. 1024.);
          Printf.sprintf "%d/%d" !delivered !total;
          Texttable.cell_int !looped;
          Texttable.cell_int !violations;
          string_of_bool !all_converged;
        ])
    [ "dv-plain"; "link-state"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
  Texttable.print t;
  note
    "\nExpected shape: every protocol reconverges each time (the model's\n\
     adaptivity requirement, section 2.2); EGP accumulates silent loops;\n\
     the violating baselines deliver everything, the policy designs stay\n\
     clean. Legality is judged against the policies, which do not depend\n\
     on which link happens to be down.\n"

(* ------------------------------------------------------------------ *)
(* E13: database distribution strategies (section 6, open issue 2)     *)
(* ------------------------------------------------------------------ *)

let e13_database_distribution () =
  section "E13. Database distribution: full flooding vs stub delegation (section 6)";
  note
    "Most ADs are stubs; under delegation LSAs flood only among transit-\n\
     capable ADs and stub sources query their provider's route server\n\
     (two control messages per synthesis) instead of holding databases.\n\
     200 flows after convergence; one link failure and reflood included.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("ADs", Texttable.Right);
          ("strategy", Texttable.Left);
          ("flood msgs", Texttable.Right);
          ("flood kbytes", Texttable.Right);
          ("mean stub DB", Texttable.Right);
          ("delivered", Texttable.Right);
          ("total msgs", Texttable.Right);
        ]
  in
  List.iter
    (fun target ->
      let scenario = Scenario.sized ~target_ads:target ~seed:149 () in
      let g = scenario.Scenario.graph in
      let stubs = Graph.stub_ids g in
      let run name (module O : Pr_orwg.Orwg.S) =
        let module R = Runner.Make (O) in
        let rng = Rng.create 151 in
        let flows = Scenario.flows scenario ~rng ~count:200 () in
        let r = R.setup g scenario.Scenario.config in
        let c = R.converge r in
        let delivered = ref 0 in
        List.iter
          (fun f -> if Forwarding.delivered (R.send_flow r f) then incr delivered)
          flows;
        (* A failure exercises refloods under both strategies. *)
        let lid =
          Graph.fold_links g ~init:0 ~f:(fun acc l ->
              if l.Link.kind = Link.Lateral then l.Link.id else acc)
        in
        R.fail_link r lid;
        ignore (R.converge r);
        List.iter (fun f -> ignore (R.send_flow r f)) flows;
        let mean_stub_db =
          Stats.mean
            (List.map (fun ad -> float_of_int (O.db_entries (R.protocol r) ad)) stubs)
        in
        Texttable.add_row t
          [
            Texttable.cell_int (Graph.n g);
            name;
            Texttable.cell_int c.Runner.messages;
            Texttable.cell_float ~decimals:0 (float_of_int c.Runner.bytes /. 1024.);
            Texttable.cell_float mean_stub_db;
            Printf.sprintf "%d/%d" !delivered (List.length flows);
            Texttable.cell_int (Metrics.messages (R.metrics r));
          ]
      in
      run "full flooding" (module Pr_orwg.Orwg.Orwg);
      run "stub delegation" (module Pr_orwg.Orwg.Delegated);
      Texttable.add_separator t)
    [ 56; 104 ];
  Texttable.print t;
  note
    "\nExpected shape: delegation removes the stub share of flooding (most of\n\
     it) and empties stub databases, at identical delivery — the query cost\n\
     is per synthesis, not per packet.\n"

(* ------------------------------------------------------------------ *)
(* E14: logical cluster replication (section 5.1.1, footnote 4)        *)
(* ------------------------------------------------------------------ *)

let e14_replication () =
  section "E14. Expressing prev/next-hop policy by logical replication (5.1.1 fn. 4)";
  note
    "Diamond internet: cheap transit X, costly transit Y between hosts A and\n\
     B; C is X's customer. X's intent: carry C's traffic only, no A<->B\n\
     transit. The intent is inexpressible in one partial ordering; it can be\n\
     expressed by replicating X into logical clusters X{A,C} and X{B,C} —\n\
     at the cost of extra logical nodes and addresses — or directly by\n\
     policy terms (ORWG), at no topological cost.\n";
  let ads =
    [|
      Ad.make ~id:0 ~name:"A" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:1 ~name:"B" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:2 ~name:"X" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:3 ~name:"Y" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:4 ~name:"C" ~klass:Ad.Stub ~level:Ad.Campus;
    |]
  in
  let links =
    [|
      Link.make ~id:0 ~a:2 ~b:0 ~cost:1 Link.Hierarchical;
      Link.make ~id:1 ~a:2 ~b:1 ~cost:1 Link.Hierarchical;
      Link.make ~id:2 ~a:3 ~b:0 ~cost:3 Link.Hierarchical;
      Link.make ~id:3 ~a:3 ~b:1 ~cost:3 Link.Hierarchical;
      Link.make ~id:4 ~a:2 ~b:4 ~cost:1 Link.Hierarchical;
    |]
  in
  let g = Graph.create ads links in
  let intent =
    let transit =
      Array.map
        (fun (a : Ad.t) ->
          if a.Ad.id = 2 then
            Pr_policy.Transit_policy.make 2
              [
                Pr_policy.Policy_term.make ~owner:2
                  ~sources:(Pr_policy.Policy_term.Only [| 4 |]) ();
                Pr_policy.Policy_term.make ~owner:2
                  ~destinations:(Pr_policy.Policy_term.Only [| 4 |]) ();
              ]
          else if Ad.is_transit_capable a then
            Pr_policy.Transit_policy.open_transit a.Ad.id
          else Pr_policy.Transit_policy.no_transit a.Ad.id)
        (Graph.ads g)
    in
    Config.make ~transit ()
  in
  let mapping =
    Pr_ecma.Replication.expand g
      [ { Pr_ecma.Replication.ad = 2; groups = [ [ 0; 4 ]; [ 1; 4 ] ] } ]
  in
  let expanded = mapping.Pr_ecma.Replication.expanded in
  let flows =
    [ (0, 1); (1, 0); (0, 4); (4, 0); (1, 4); (4, 1) ]
    |> List.map (fun (src, dst) -> Flow.make ~src ~dst ())
  in
  let t =
    Texttable.create
      ~columns:
        [
          ("configuration", Texttable.Left);
          ("nodes", Texttable.Right);
          ("delivered", Texttable.Right);
          ("intent violations", Texttable.Right);
          ("tbl total", Texttable.Right);
        ]
  in
  let judge g_run collapse label =
    let module R = Runner.Make (Pr_ecma.Ecma) in
    let r = R.setup g_run (Config.defaults g_run) in
    ignore (R.converge r);
    let delivered = ref 0 and violations = ref 0 in
    List.iter
      (fun f ->
        match R.send_flow r f with
        | Forwarding.Delivered { path; _ } ->
          incr delivered;
          let physical = collapse path in
          if not (Validate.transit_legal g intent f physical) then incr violations
        | _ -> ())
      flows;
    Texttable.add_row t
      [
        label;
        Texttable.cell_int (Graph.n g_run);
        Printf.sprintf "%d/%d" !delivered (List.length flows);
        Texttable.cell_int !violations;
        Texttable.cell_int (R.table_entries r);
      ]
  in
  judge g (fun p -> p) "ecma, physical topology";
  judge expanded (Pr_ecma.Replication.collapse_path mapping) "ecma, X replicated";
  (* ORWG expresses the intent directly with policy terms. *)
  let module Ro = Runner.Make (Pr_orwg.Orwg.Orwg) in
  let ro = Ro.setup g intent in
  ignore (Ro.converge ro);
  let delivered = ref 0 and violations = ref 0 in
  List.iter
    (fun f ->
      match Ro.send_flow ro f with
      | Forwarding.Delivered { path; _ } ->
        incr delivered;
        if not (Validate.transit_legal g intent f path) then incr violations
      | _ -> ())
    flows;
  Texttable.add_row t
    [
      "orwg, policy terms";
      Texttable.cell_int (Graph.n g);
      Printf.sprintf "%d/%d" !delivered (List.length flows);
      Texttable.cell_int !violations;
      Texttable.cell_int (Ro.table_entries ro);
    ];
  Texttable.print t;
  note
    "\nExpected shape: plain ECMA delivers everything but violates the intent\n\
     on A<->B; replication enforces it structurally (traffic shifts to Y) at\n\
     the cost of an extra logical node and larger tables; explicit policy\n\
     terms achieve the same compliance with no topological cost — the\n\
     paper's argument for PTs over policy-in-topology.\n"

(* ------------------------------------------------------------------ *)
(* E15: QOS routing — one tree per class (sections 2.3 and 3)          *)
(* ------------------------------------------------------------------ *)

let e15_qos_routing () =
  section "E15. QOS routing: one spanning tree per class, not per source (2.3, 3)";
  note
    "56-AD internet with heterogeneous link delays. Each sampled host pair\n\
     sends one flow per service class through ORWG; per class we report the\n\
     mean delay and cost of the delivered paths, and how often the class's\n\
     path differs from the default one. Below, the state bill of per-QOS\n\
     trees (ECMA) vs per-source routes (IDRP per-source) on the same small\n\
     internet — the paper's point that QOS multiplies state by a constant\n\
     while source-specific policy multiplies it by the number of ADs.\n";
  let topology = { Generator.default with max_delay = 4.0; max_cost = 3 } in
  let scenario = Scenario.hierarchical ~topology ~seed:163 () in
  let g = scenario.Scenario.graph in
  let module R = Runner.Make (Pr_orwg.Orwg.Orwg) in
  let r = R.setup g scenario.Scenario.config in
  ignore (R.converge r);
  let rng = Rng.create 167 in
  let pairs =
    Scenario.flows scenario ~rng ~count:120 ~classes:false ()
    |> List.map (fun (f : Flow.t) -> (f.Flow.src, f.Flow.dst))
  in
  let t =
    Texttable.create
      ~columns:
        [
          ("QOS class", Texttable.Left);
          ("delivered", Texttable.Right);
          ("mean delay", Texttable.Right);
          ("mean cost", Texttable.Right);
          ("path differs from default", Texttable.Right);
        ]
  in
  let default_paths = Hashtbl.create 128 in
  List.iter
    (fun qos ->
      let delays = ref [] and costs = ref [] in
      let delivered = ref 0 and differs = ref 0 in
      List.iter
        (fun (src, dst) ->
          match R.send_flow r (Flow.make ~src ~dst ~qos ()) with
          | Forwarding.Delivered { path; _ } ->
            incr delivered;
            (match Pr_proto.Qos_metric.path_delay g path with
            | Some d -> delays := d :: !delays
            | None -> ());
            (match Path.cost g path with
            | Some c -> costs := float_of_int c :: !costs
            | None -> ());
            if qos = Qos.Default then Hashtbl.replace default_paths (src, dst) path
            else if
              Hashtbl.find_opt default_paths (src, dst) <> None
              && Hashtbl.find_opt default_paths (src, dst) <> Some path
            then incr differs
          | _ -> ())
        pairs;
      Texttable.add_row t
        [
          Qos.to_string qos;
          Printf.sprintf "%d/%d" !delivered (List.length pairs);
          Texttable.cell_float (Stats.mean !delays);
          Texttable.cell_float (Stats.mean !costs);
          (if qos = Qos.Default then "-" else Texttable.cell_int !differs);
        ])
    Qos.all;
  Texttable.print t;
  note "\nState bill on the Figure-1 internet (14 ADs, 8 host ADs):\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("design", Texttable.Left);
          ("multiplier", Texttable.Left);
          ("tbl total", Texttable.Right);
        ]
  in
  let fig = Scenario.figure1 ~seed:173 () in
  let state name =
    let (Registry.Packed (module P)) = Registry.find name in
    let module R = Runner.Make (P) in
    let r = R.setup fig.Scenario.graph fig.Scenario.config in
    ignore (R.converge ~max_events:10_000_000 r);
    R.table_entries r
  in
  Texttable.add_row t
    [ "dv-plain (no QOS, no policy)"; "1x"; Texttable.cell_int (state "dv-plain") ];
  Texttable.add_row t
    [ "ecma (4 QOS trees)"; "x QOS classes"; Texttable.cell_int (state "ecma") ];
  Texttable.add_row t
    [
      "idrp-per-source (per-source routes)";
      "x source ADs x classes";
      Texttable.cell_int (state "idrp-per-source");
    ];
  Texttable.print t;
  note
    "\nExpected shape: low-delay traffic takes measurably faster, costlier\n\
     paths; reliability traffic takes fewer hops. QOS multiplies routing\n\
     state by the (small, fixed) number of classes, while source-specific\n\
     policy multiplies it by the number of ADs — \"the potential increase in\n\
     overhead is not as radical as with PR\" (section 2.3).\n"

(* ------------------------------------------------------------------ *)
(* E16: effects of internet topology on route synthesis (sections 2.1, 6) *)
(* ------------------------------------------------------------------ *)

let e16_topology_effects () =
  section "E16. Lateral and bypass links: benefit and cost (sections 2.1 and 6)";
  note
    "The model demands protocols \"work efficiently for the general\n\
     hierarchical case\" while accommodating lateral and bypass links\n\
     \"in a graceful manner\" with acceptable performance impact. Sweeping\n\
     their density on ~56-AD internets (120 flows through ORWG).\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("lateral", Texttable.Right);
          ("bypass", Texttable.Right);
          ("links", Texttable.Right);
          ("delivered", Texttable.Right);
          ("mean hops", Texttable.Right);
          ("mean cost", Texttable.Right);
          ("synth work/route", Texttable.Right);
        ]
  in
  List.iter
    (fun (lateral_prob, bypass_prob) ->
      let topology = { Generator.default with lateral_prob; bypass_prob } in
      let scenario = Scenario.hierarchical ~topology ~seed:179 () in
      let g = scenario.Scenario.graph in
      let module R = Runner.Make (Pr_orwg.Orwg.Orwg) in
      let r = R.setup g scenario.Scenario.config in
      ignore (R.converge r);
      let rng = Rng.create 181 in
      let flows = Scenario.flows scenario ~rng ~count:120 ~classes:false () in
      let comp_before = Metrics.computations (R.metrics r) in
      let delivered = ref 0 and hops = ref [] and costs = ref [] in
      List.iter
        (fun f ->
          match R.send_flow r f with
          | Forwarding.Delivered { path; _ } ->
            incr delivered;
            hops := float_of_int (Path.hops path) :: !hops;
            (match Path.cost g path with
            | Some c -> costs := float_of_int c :: !costs
            | None -> ())
          | _ -> ())
        flows;
      let work = Metrics.computations (R.metrics r) - comp_before in
      Texttable.add_row t
        [
          Texttable.cell_float ~decimals:2 lateral_prob;
          Texttable.cell_float ~decimals:2 bypass_prob;
          Texttable.cell_int (Graph.num_links g);
          Printf.sprintf "%d/%d" !delivered (List.length flows);
          Texttable.cell_float (Stats.mean !hops);
          Texttable.cell_float (Stats.mean !costs);
          Texttable.cell_float
            (Stats.ratio (float_of_int work) (float_of_int !delivered));
        ])
    [ (0.0, 0.0); (0.15, 0.05); (0.3, 0.1); (0.6, 0.2); (1.0, 0.4) ];
  Texttable.print t;
  note
    "\nExpected shape: a pure hierarchy routes everything through the\n\
     backbones (longest, costliest paths, and some pairs unreachable under\n\
     policy); each increment of lateral/bypass density shortens routes and\n\
     raises availability, while per-route synthesis work stays near-flat —\n\
     the graceful accommodation the model demands (2.1), with the\n\
     performance impact showing up as database size rather than search\n\
     time.\n"

(* ------------------------------------------------------------------ *)
(* SYNTH: route-synthesis scaling on the CSR core                      *)
(* ------------------------------------------------------------------ *)

(* Machine-readable scaling benchmark: per-source shortest-path trees
   (Spf.tree, the synthesis kernel every link-state design repeats) on
   generated internets of 10^2..10^4 ADs. Reports ns per tree, words
   allocated per tree, and the live heap after synthesis; with [--json]
   the same numbers land in a JSON file for tracking across commits.

   Options (single-token, so the driver can tell them from experiment
   names): [--json], [--sizes=100,1000,10000], [--out=FILE]. *)

let synth_arg prefix =
  Array.to_list Sys.argv
  |> List.find_map (fun a ->
         if String.starts_with ~prefix a && String.length a > String.length prefix then
           Some (String.sub a (String.length prefix) (String.length a - String.length prefix))
         else None)

(* Shared timing harness for the scaling benchmarks below: warm up,
   settle the heap, then take the best of several short batches — the
   minimum is the standard noise-robust estimator for a deterministic
   kernel (scheduler preemption, GC, and host frequency dips only ever
   inflate a batch). [ops] is how many logical operations one call of
   [f] performs. *)
let batch_ns_per ~ops f =
  let reps = ref 0 in
  let elapsed = ref 0.0 in
  let t0 = Sys.time () in
  while !reps < 2 || (!elapsed < 0.05 && !reps < 100) do
    f ();
    incr reps;
    elapsed := Sys.time () -. t0
  done;
  !elapsed *. 1e9 /. (float_of_int !reps *. float_of_int ops)

let time_ns_per ~ops f =
  f () (* warm-up *);
  Gc.full_major ();
  let best = ref infinity in
  for _batch = 1 to 5 do
    let per = batch_ns_per ~ops f in
    if per < !best then best := per
  done;
  !best

(* Comparative form: interleave the two variants' batches (A B A B …)
   so both sample the same noise profile — on a shared host, sustained
   interference would otherwise land entirely on whichever variant ran
   second and invert the ratio. *)
let time_pair_ns_per ~ops fa fb =
  fa ();
  fb () (* warm-up both *);
  Gc.full_major ();
  let best_a = ref infinity and best_b = ref infinity in
  for _round = 1 to 6 do
    let a = batch_ns_per ~ops fa in
    if a < !best_a then best_a := a;
    let b = batch_ns_per ~ops fb in
    if b < !best_b then best_b := b
  done;
  (!best_a, !best_b)

(* Spf-tree scaling measurement: min-of-batches timing like every
   other kernel here, plus one counted pass outside the timed loop for
   the allocation figure (batching would smear GC noise into it). *)
let synth_measure g =
  let n = Graph.n g in
  let k = Stdlib.min 10 n in
  let sources = List.init k (fun i -> i * n / k) in
  let run_once () = List.iter (fun src -> ignore (Spf.tree g ~src)) sources in
  let reps = ref 0 in
  let ns =
    time_ns_per ~ops:k (fun () ->
        incr reps;
        run_once ())
  in
  let per_tree = Pr_telemetry.Alloc.words_per ~ops:k run_once in
  let live = (Gc.stat ()).Gc.live_words in
  (k, !reps, ns, per_tree, live)

(* The policy mix the paper warns about (§5.2.1): most transit ADs
   restrictive, at per-(source set, UCI, QOS) granularity — the regime
   where admission checks dominate synthesis. *)
let restrictive_policy =
  { Gen.default with Gen.restrictiveness = 0.8; granularity = Gen.Fine }

(* A converged link-state database for a scenario without running the
   simulation: one LSA per AD carrying its configured Policy Terms and
   the cheapest up link per neighbor — exactly what flooding leaves
   behind. *)
let static_policy_db (scenario : Scenario.t) =
  let g = scenario.Scenario.graph in
  let config = scenario.Scenario.config in
  let n = Graph.n g in
  let db = Pr_proto.Lsdb.create ~n in
  for ad = 0 to n - 1 do
    let adjacencies =
      List.map
        (fun nbr ->
          let l = Graph.link g (Option.get (Graph.find_link g ad nbr)) in
          { Pr_proto.Lsdb.nbr; cost = l.Link.cost; delay = l.Link.delay })
        (Graph.neighbor_ids g ad)
    in
    ignore
      (Pr_proto.Lsdb.insert db
         (Pr_proto.Lsdb.make_lsa ~origin:ad ~seq:1 ~adjacencies
            ~terms:(Config.transit config ad).Pr_policy.Transit_policy.terms))
  done;
  db

(* Route synthesis (the LS-HBH/ORWG kernel: engine build + exact
   (node, arrived-from) search) on one scenario, timed with the
   interpreted admission path and again with the compiled one. Returns
   (flows, interpreted ns/route, compiled ns/route). *)
let policy_synth_measure (scenario : Scenario.t) =
  let g = scenario.Scenario.graph in
  let n = Graph.n g in
  let db = static_policy_db scenario in
  let flows = Scenario.flows scenario ~rng:(Rng.create 213) ~count:10 () in
  let synthesize_all () =
    List.iter
      (fun flow ->
        let e = Pr_proto.Policy_route.engine db ~n flow in
        ignore (Pr_proto.Policy_route.shortest e ()))
      flows
  in
  let forced flag () =
    Pr_proto.Policy_route.force_interpreted := flag;
    Fun.protect
      ~finally:(fun () -> Pr_proto.Policy_route.force_interpreted := false)
      synthesize_all
  in
  (* Both paths must synthesize identical routes — the equivalence the
     qcheck suite proves term-by-term, re-checked here end-to-end. *)
  List.iter
    (fun flow ->
      let route forced =
        Pr_proto.Policy_route.force_interpreted := forced;
        Fun.protect
          ~finally:(fun () -> Pr_proto.Policy_route.force_interpreted := false)
          (fun () ->
            fst (Pr_proto.Policy_route.shortest (Pr_proto.Policy_route.engine db ~n flow) ()))
      in
      if route true <> route false then
        failwith "policy_synth_measure: interpreted and compiled routes differ")
    flows;
  let interp_ns, compiled_ns =
    time_pair_ns_per ~ops:(List.length flows) (forced true) (forced false)
  in
  (List.length flows, interp_ns, compiled_ns)

(* ------------------------------------------------------------------ *)
(* DELTA: incremental SPF repair vs full recompute, and hierarchical   *)
(* route synthesis, up to the paper's 10^5-AD scale (sections 2.2, 6)  *)
(* ------------------------------------------------------------------ *)

type delta_row = {
  d_target : int;
  d_ads : int;
  d_links : int;
  d_srcs : int;
  d_events : int;
  d_full_ns : float;
  d_incr_ns : float;
  d_clusters : int;
  d_pairs : int;
  d_stretch_mean : float;
  d_stretch_max : float;
  d_table_mean : float;
  d_route_ns : float;
}

let delta_measure target =
  let g = Generator.generate (Rng.create 211) (Generator.scaled ~target_ads:target) in
  let n = Graph.n g and m = Graph.num_links g in
  (* The event batch is a set of single-link down/up toggles spread
     across the link array: each pair restores the state it patched,
     so batches repeat cleanly. The full-recompute arm reruns a
     scratch Dijkstra per event, so its budget must shrink as n
     grows or the benchmark would spend minutes proving the obvious. *)
  let srcs, toggles =
    if n >= 50_000 then (1, 4) else if n >= 5_000 then (2, 16) else (4, 32)
  in
  let sources = List.init srcs (fun i -> i * n / srcs) in
  let lids = List.init toggles (fun i -> i * m / toggles) in
  let trees = List.map (fun src -> Spf_delta.create g ~src) sources in
  let up = Array.make m true in
  let cost = Array.init m (fun lid -> (Graph.link g lid).Link.cost) in
  let incr_arm () =
    List.iter
      (fun d ->
        List.iter
          (fun lid ->
            Spf_delta.set_link d lid ~up:false;
            Spf_delta.set_link d lid ~up:true)
          lids)
      trees
  in
  let full_arm () =
    List.iter
      (fun src ->
        List.iter
          (fun lid ->
            up.(lid) <- false;
            ignore (Spf.tree_state g ~up ~cost ~src);
            up.(lid) <- true;
            ignore (Spf.tree_state g ~up ~cost ~src))
          lids)
      sources
  in
  (* The two arms must agree before either is timed: after one batch
     of toggles the repaired trees are back at the static state. *)
  incr_arm ();
  List.iter2
    (fun d src ->
      if
        (Spf_delta.to_tree d).Spf.dist <> (Spf.tree g ~src).Spf.dist
        || Spf_delta.self_check d <> Ok ()
      then failwith "delta_measure: incremental and full SPF disagree")
    trees sources;
  let ops = srcs * toggles * 2 in
  let full_ns, incr_ns = time_pair_ns_per ~ops full_arm incr_arm in
  (* Hierarchical synthesis on the same internet: cluster-level routes
     stitched through border ADs, stretch measured against exact
     shortest paths from a few sampled sources. *)
  let h = Hierarchy.build g ~cluster_of:(Hierarchy.clusters_of_levels g) in
  let rng = Rng.create 223 in
  let hsrcs = List.init 4 (fun _ -> Rng.int rng n) in
  let pairs =
    List.concat_map (fun src -> List.init 6 (fun _ -> (src, Rng.int rng n))) hsrcs
  in
  let stretches = ref [] in
  List.iter
    (fun src ->
      let exact = Spf.tree g ~src in
      List.iter
        (fun (s, dst) ->
          if s = src && dst <> src then
            match Hierarchy.route h ~src ~dst with
            | None -> ()
            | Some p ->
              let c = Hierarchy.route_cost h p in
              if c > 0 && exact.Spf.dist.(dst) > 0 then
                stretches :=
                  (float_of_int c /. float_of_int exact.Spf.dist.(dst)) :: !stretches)
        pairs)
    hsrcs;
  let route_ns =
    time_ns_per ~ops:(List.length pairs) (fun () ->
        List.iter (fun (src, dst) -> ignore (Hierarchy.route h ~src ~dst)) pairs)
  in
  let table_total = ref 0 in
  for ad = 0 to n - 1 do
    table_total := !table_total + Hierarchy.table_entries h ad
  done;
  {
    d_target = target;
    d_ads = n;
    d_links = m;
    d_srcs = srcs;
    d_events = toggles * 2;
    d_full_ns = full_ns;
    d_incr_ns = incr_ns;
    d_clusters = Hierarchy.num_clusters h;
    d_pairs = List.length !stretches;
    d_stretch_mean = Stats.mean !stretches;
    d_stretch_max = List.fold_left Stdlib.max 1.0 !stretches;
    d_table_mean = float_of_int !table_total /. float_of_int n;
    d_route_ns = route_ns;
  }

let run_delta ~sizes =
  note
    "Single-link failure/recovery events on generated internets: a retained\n\
     Spf_delta tree repairs in O(affected region) while the full arm reruns\n\
     scratch Dijkstra per event. Hierarchical synthesis stitches cluster-\n\
     level routes through border ADs; stretch is route cost over the exact\n\
     shortest-path cost, sampled pairs.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("ADs", Texttable.Right);
          ("links", Texttable.Right);
          ("srcs", Texttable.Right);
          ("events", Texttable.Right);
          ("full ns/event", Texttable.Right);
          ("incr ns/event", Texttable.Right);
          ("speedup", Texttable.Right);
          ("clusters", Texttable.Right);
          ("stretch mean", Texttable.Right);
          ("stretch max", Texttable.Right);
          ("tbl mean", Texttable.Right);
          ("route ns", Texttable.Right);
        ]
  in
  let rows = List.map delta_measure sizes in
  List.iter
    (fun r ->
      Texttable.add_row t
        [
          Texttable.cell_int r.d_ads;
          Texttable.cell_int r.d_links;
          Texttable.cell_int r.d_srcs;
          Texttable.cell_int r.d_events;
          Texttable.cell_float ~decimals:0 r.d_full_ns;
          Texttable.cell_float ~decimals:0 r.d_incr_ns;
          Texttable.cell_float ~decimals:1 (r.d_full_ns /. r.d_incr_ns);
          Texttable.cell_int r.d_clusters;
          Texttable.cell_float r.d_stretch_mean;
          Texttable.cell_float r.d_stretch_max;
          Texttable.cell_float ~decimals:0 r.d_table_mean;
          Texttable.cell_float ~decimals:0 r.d_route_ns;
        ])
    rows;
  Texttable.print t;
  note
    "\nExpected shape: incremental repair cost tracks the affected region (a\n\
     few hundred nodes) while the full recompute tracks n, so the speedup\n\
     grows roughly linearly with the internet; hierarchical tables sit near\n\
     2*sqrt(n) entries against n for flat synthesis, at small stretch.\n";
  rows

let delta_sizes () =
  match synth_arg "--dsizes=" with
  | None -> [ 1_000; 10_000; 100_000 ]
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let delta () =
  section "DELTA. Incremental delta-SPF and hierarchical synthesis (2.2, 6)";
  ignore (run_delta ~sizes:(delta_sizes ()))

let synth () =
  let sizes =
    match synth_arg "--sizes=" with
    | None -> [ 100; 1_000; 10_000 ]
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  let psizes =
    match synth_arg "--psizes=" with
    | None -> [ 56; 120; 240 ]
    | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)
  in
  let out = Option.value (synth_arg "--out=") ~default:"BENCH_synthesis.json" in
  let json = Array.exists (( = ) "--json") Sys.argv in
  section "SYNTH. Route-synthesis scaling on the CSR graph core (section 6)";
  note
    "Per-source shortest-path trees (the synthesis every link-state design\n\
     repeats) over generated internets; 10 sources per size, repeated until\n\
     the clock settles. ns/op is one full tree.\n";
  let t =
    Texttable.create
      ~columns:
        [
          ("ADs", Texttable.Right);
          ("links", Texttable.Right);
          ("srcs", Texttable.Right);
          ("reps", Texttable.Right);
          ("ns/op", Texttable.Right);
          ("alloc words/op", Texttable.Right);
          ("live words", Texttable.Right);
        ]
  in
  let results =
    List.map
      (fun target ->
        let g = Generator.generate (Rng.create 211) (Generator.scaled ~target_ads:target) in
        let sources, reps, ns, words, live = synth_measure g in
        Texttable.add_row t
          [
            Texttable.cell_int (Graph.n g);
            Texttable.cell_int (Graph.num_links g);
            Texttable.cell_int sources;
            Texttable.cell_int reps;
            Texttable.cell_float ~decimals:0 ns;
            Texttable.cell_float ~decimals:0 words;
            Texttable.cell_int live;
          ];
        (target, Graph.n g, Graph.num_links g, sources, reps, ns, words, live))
      sizes
  in
  Texttable.print t;
  note
    "\nRestrictive-policy route synthesis (the LS-HBH exact search under\n\
     restrictiveness 0.8, Fine granularity): interpreted term lists vs the\n\
     compiled bitset engine, identical routes checked per flow.\n";
  let pt =
    Texttable.create
      ~columns:
        [
          ("ADs", Texttable.Right);
          ("links", Texttable.Right);
          ("flows", Texttable.Right);
          ("interp ns/route", Texttable.Right);
          ("compiled ns/route", Texttable.Right);
          ("speedup", Texttable.Right);
        ]
  in
  let presults =
    List.map
      (fun target ->
        let scenario =
          Scenario.for_size ~policy:restrictive_policy ~target_ads:target ~seed:211 ()
        in
        let g = scenario.Scenario.graph in
        let flows, interp_ns, compiled_ns = policy_synth_measure scenario in
        Texttable.add_row pt
          [
            Texttable.cell_int (Graph.n g);
            Texttable.cell_int (Graph.num_links g);
            Texttable.cell_int flows;
            Texttable.cell_float ~decimals:0 interp_ns;
            Texttable.cell_float ~decimals:0 compiled_ns;
            Texttable.cell_float ~decimals:2 (interp_ns /. compiled_ns);
          ];
        (target, Graph.n g, Graph.num_links g, flows, interp_ns, compiled_ns))
      psizes
  in
  Texttable.print pt;
  note "\nIncremental delta-SPF and hierarchical synthesis on the same internets:\n";
  let drows = run_delta ~sizes:(delta_sizes ()) in
  if json then begin
    let oc = open_out out in
    Printf.fprintf oc "{\n";
    Printf.fprintf oc "  \"benchmark\": \"route_synthesis_scaling\",\n";
    Printf.fprintf oc "  \"kernel\": \"Spf.tree (Dijkstra over CSR adjacency)\",\n";
    Printf.fprintf oc
      "  \"units\": { \"time\": \"ns_per_op\", \"alloc\": \"words_per_op\", \"live\": \
       \"words\" },\n";
    Printf.fprintf oc "  \"results\": [\n";
    List.iteri
      (fun i (target, ads, links, sources, reps, ns, words, live) ->
        Printf.fprintf oc
          "    { \"target_ads\": %d, \"ads\": %d, \"links\": %d, \"sources\": %d, \
           \"reps\": %d, \"ns_per_op\": %.0f, \"alloc_words_per_op\": %.0f, \
           \"live_words\": %d }%s\n"
          target ads links sources reps ns words live
          (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ],\n";
    Printf.fprintf oc "  \"policy_synthesis\": {\n";
    Printf.fprintf oc
      "    \"kernel\": \"Policy_route.shortest (exact policy search, restrictiveness \
       0.8, fine granularity)\",\n";
    Printf.fprintf oc "    \"units\": { \"time\": \"ns_per_route\" },\n";
    Printf.fprintf oc "    \"results\": [\n";
    List.iteri
      (fun i (target, ads, links, flows, interp_ns, compiled_ns) ->
        Printf.fprintf oc
          "      { \"target_ads\": %d, \"ads\": %d, \"links\": %d, \"flows\": %d, \
           \"interpreted_ns_per_route\": %.0f, \"compiled_ns_per_route\": %.0f, \
           \"speedup\": %.2f }%s\n"
          target ads links flows interp_ns compiled_ns
          (interp_ns /. compiled_ns)
          (if i = List.length presults - 1 then "" else ","))
      presults;
    Printf.fprintf oc "    ]\n  },\n";
    Printf.fprintf oc "  \"delta\": {\n";
    Printf.fprintf oc
      "    \"kernel\": \"Spf_delta repair vs Spf.tree_state full recompute; Hierarchy \
       two-level synthesis\",\n";
    Printf.fprintf oc
      "    \"units\": { \"time\": \"ns_per_event\", \"route\": \"ns_per_route\" },\n";
    Printf.fprintf oc "    \"results\": [\n";
    List.iteri
      (fun i r ->
        Printf.fprintf oc
          "      { \"target_ads\": %d, \"ads\": %d, \"links\": %d, \"sources\": %d, \
           \"events\": %d, \"full_ns_per_event\": %.0f, \"incremental_ns_per_event\": \
           %.0f, \"speedup\": %.1f, \"clusters\": %d, \"hier_stretch_mean\": %.3f, \
           \"hier_stretch_max\": %.3f, \"hier_table_mean\": %.1f, \"hier_route_ns\": \
           %.0f, \"pairs\": %d }%s\n"
          r.d_target r.d_ads r.d_links r.d_srcs r.d_events r.d_full_ns r.d_incr_ns
          (r.d_full_ns /. r.d_incr_ns)
          r.d_clusters r.d_stretch_mean r.d_stretch_max r.d_table_mean r.d_route_ns
          r.d_pairs
          (if i = List.length drows - 1 then "" else ","))
      drows;
    Printf.fprintf oc "    ]\n  }\n}\n";
    close_out oc;
    note "\nWrote %s\n" out
  end

(* ------------------------------------------------------------------ *)
(* PADMIT: the admission check itself, interpreted vs compiled         *)
(* ------------------------------------------------------------------ *)

(* One admission check — "does some PT of this AD admit this crossing"
   — is the inner loop of every policy design point: LS-HBH and ORWG
   run it per (node, arrived-from) relaxation, IDRP per mask build.
   Measure it in isolation on a restrictive internet, three ways:

   - interpreted: [List.exists Policy_term.admits] over the raw terms
     (the pre-compilation engine, kept alive behind
     [Policy_route.force_interpreted]);
   - compiled:    [Compiled.allows] — int masks + bitset probes, no
                  per-flow setup;
   - specialized: the [Policy_route.engine] path — flow-only
                  conditions resolved once per (flow, AD), leaving only
                  prev/next probes per check. *)
let padmit () =
  section "PADMIT. Policy-admission microbenchmark (sections 5.2-5.4 inner loop)";
  let scenario =
    Scenario.for_size ~policy:restrictive_policy ~target_ads:56 ~seed:211 ()
  in
  let g = scenario.Scenario.graph in
  let n = Graph.n g in
  let db = static_policy_db scenario in
  let flows = Scenario.flows scenario ~rng:(Rng.create 217) ~count:4 () in
  (* Probe set: every transit crossing (ad, prev, next) over ordered
     pairs of distinct neighbors — the checks an exact search makes. *)
  let probes =
    List.concat_map
      (fun ad ->
        let nbrs = Graph.neighbor_ids g ad in
        List.concat_map
          (fun p ->
            List.filter_map (fun q -> if p <> q then Some (ad, p, q) else None) nbrs)
          nbrs)
      (List.init n Fun.id)
  in
  let ops = List.length flows * List.length probes in
  note
    "%d ADs, %d flows x %d crossings = %d admission checks per rep\n\
     (restrictiveness 0.8, Fine granularity).\n"
    n (List.length flows) (List.length probes) ops;
  let count_engine () =
    let c = ref 0 in
    List.iter
      (fun flow ->
        let e = Pr_proto.Policy_route.engine db ~n flow in
        List.iter
          (fun (ad, p, q) ->
            if Pr_proto.Policy_route.admits e ad ~prev:(Some p) ~next:(Some q) then incr c)
          probes)
      flows;
    !c
  in
  let count_compiled () =
    let c = ref 0 in
    List.iter
      (fun flow ->
        List.iter
          (fun (ad, p, q) ->
            if
              Pr_policy.Compiled.allows
                (Pr_proto.Lsdb.compiled_of db ad)
                { Pr_policy.Policy_term.flow; prev = Some p; next = Some q }
            then incr c)
          probes)
      flows;
    !c
  in
  let with_interpreted f =
    Pr_proto.Policy_route.force_interpreted := true;
    Fun.protect
      ~finally:(fun () -> Pr_proto.Policy_route.force_interpreted := false)
      f
  in
  let pdd_store = Pr_serve.Pdd.store_create () in
  let roots =
    Array.init n (fun ad -> Pr_serve.Pdd.compile pdd_store (Pr_proto.Lsdb.compiled_of db ad))
  in
  let count_diagram () =
    let c = ref 0 in
    List.iter
      (fun flow ->
        List.iter
          (fun (ad, p, q) ->
            if Pr_serve.Pdd.admit_node roots.(ad) flow ~prev:(Some p) ~next:(Some q)
            then incr c)
          probes)
      flows;
    !c
  in
  let count_diagram_entry () =
    let c = ref 0 in
    List.iter
      (fun flow ->
        let entries = Array.map (fun r -> Pr_serve.Pdd.flow_entry r flow) roots in
        List.iter
          (fun (ad, p, q) ->
            if Pr_serve.Pdd.entry_admit entries.(ad) ~prev:(Some p) ~next:(Some q) then
              incr c)
          probes)
      flows;
    !c
  in
  (* All variants must agree before any of them is timed. *)
  let admitted = count_engine () in
  if count_compiled () <> admitted || with_interpreted count_engine <> admitted then
    failwith "padmit: admission variants disagree";
  if count_diagram () <> admitted || count_diagram_entry () <> admitted then
    failwith "padmit: decision diagram disagrees with the term engines";
  let interp_ns = with_interpreted (fun () -> time_ns_per ~ops (fun () -> ignore (count_engine ()))) in
  let compiled_ns = time_ns_per ~ops (fun () -> ignore (count_compiled ())) in
  let spec_ns = time_ns_per ~ops (fun () -> ignore (count_engine ())) in
  let diagram_ns = time_ns_per ~ops (fun () -> ignore (count_diagram ())) in
  let diagram_entry_ns = time_ns_per ~ops (fun () -> ignore (count_diagram_entry ())) in
  let t =
    Texttable.create
      ~columns:
        [
          ("variant", Texttable.Left);
          ("ns/check", Texttable.Right);
          ("speedup", Texttable.Right);
        ]
  in
  let row name ns =
    Texttable.add_row t
      [
        name;
        Texttable.cell_float ~decimals:1 ns;
        Texttable.cell_float ~decimals:2 (interp_ns /. ns);
      ]
  in
  row "interpreted (List.exists over PTs)" interp_ns;
  row "compiled (masks + bitset probes)" compiled_ns;
  row "specialized (per-flow engine)" spec_ns;
  row "diagram (PDD root-to-leaf walk)" diagram_ns;
  row "diagram specialized (flow_entry)" diagram_entry_ns;
  Texttable.print t;
  note
    "\n%d of %d checks admitted. Expected shape: compiled beats interpreted\n\
     by resolving QOS/UCI/hour to int-mask tests and source/dest/prev/next\n\
     to one bitset probe each; specialization wins again on top by hoisting\n\
     the flow-only conditions out of the per-crossing loop. The decision\n\
     diagram (%d nodes, %d preds across the whole database) walks only the\n\
     conditions that can still matter, and its flow_entry form hoists the\n\
     flow-only prefix the same way the serving layer's synthesis does.\n"
    admitted ops
    (Pr_serve.Pdd.store_nodes pdd_store)
    (Pr_serve.Pdd.store_preds pdd_store)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per exhibit                   *)
(* ------------------------------------------------------------------ *)

let bechamel_benchmarks () =
  section "Bechamel micro-benchmarks (one kernel per exhibit)";
  let open Bechamel in
  (* Prebuilt state shared by kernels. *)
  let fig = Figure1.graph () in
  let fig_config = Config.defaults fig in
  let scenario = Scenario.hierarchical ~seed:7 () in
  let g56 = scenario.Scenario.graph in
  let mesh = Generator.random_mesh (Rng.create 1) ~n:24 ~extra_links:8 in
  let tests =
    [
      Test.make ~name:"t1_design_space_render"
        (Staged.stage (fun () -> ignore (Design_space.render ())));
      Test.make ~name:"f1_figure1_build"
        (Staged.stage (fun () -> ignore (Figure1.graph ())));
      Test.make ~name:"e1_egp_converge_mesh24"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Pr_egp.Egp) in
             let r = R.setup mesh (Config.defaults mesh) in
             ignore (R.converge r)));
      Test.make ~name:"e2_dv_count_to_infinity"
        (Staged.stage (fun () ->
             let tri = count_to_infinity_graph () in
             let module R = Runner.Make (Pr_dv.Dv.Plain) in
             let r = R.setup tri (Config.defaults tri) in
             ignore (R.converge r);
             R.fail_link r 3;
             ignore (R.converge r)));
      Test.make ~name:"e3_embeddability_k100"
        (Staged.stage (fun () ->
             let rng = Rng.create 5 in
             let cs =
               List.init 100 (fun _ ->
                   { Partial_order.above = Rng.int rng 50; below = Rng.int rng 49 + 1 })
             in
             ignore (Partial_order.embeddable ~n:50 cs)));
      Test.make ~name:"e4_idrp_converge_figure1"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Pr_idrp.Idrp.Standard) in
             let r = R.setup fig fig_config in
             ignore (R.converge r)));
      Test.make ~name:"e5_lshbh_converge_figure1"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Pr_lshbh.Lshbh) in
             let r = R.setup fig fig_config in
             ignore (R.converge r)));
      Test.make ~name:"e6_orwg_flow_setup"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Pr_orwg.Orwg.Orwg) in
             let r = R.setup fig fig_config in
             ignore (R.converge r);
             ignore (R.send_flow r (Flow.make ~src:7 ~dst:12 ()))));
      Test.make ~name:"e7_ls_flood_56"
        (Staged.stage (fun () ->
             let module R = Runner.Make (Pr_ls.Ls) in
             let r = R.setup g56 (Config.defaults g56) in
             ignore (R.converge r)));
      Test.make ~name:"e8_generate_200_ads"
        (Staged.stage (fun () ->
             ignore (Generator.generate (Rng.create 3) (Generator.scaled ~target_ads:200))));
      Test.make ~name:"e9_oracle_shortest_legal"
        (Staged.stage (fun () ->
             ignore (Validate.shortest_legal fig fig_config (Flow.make ~src:7 ~dst:12 ()) ())));
      Test.make ~name:"e10_forwarding_walk"
        (Staged.stage
           (let module R = Runner.Make (Pr_dv.Dv.Plain) in
            let r = R.setup fig fig_config in
            ignore (R.converge r);
            fun () -> ignore (R.send_flow r (Flow.make ~src:7 ~dst:12 ()))));
    ]
  in
  let t =
    Texttable.create ~columns:[ ("kernel", Texttable.Left); ("ns/run", Texttable.Right) ]
  in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
      let raw = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Texttable.add_row t [ name; Texttable.cell_float ~decimals:0 est ]
          | _ -> Texttable.add_row t [ name; "n/a" ])
        results)
    tests;
  Texttable.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("t1", table1);
    ("f1", figure1);
    ("e1", e1_egp_cycles);
    ("e2", e2_convergence);
    ("e3", e3_ecma_expressiveness);
    ("e4", e4_idrp_granularity);
    ("e5", e5_lshbh_burden);
    ("e6", e6_orwg_overhead);
    ("e7", e7_synthesis);
    ("e8", e8_scaling);
    ("e9", e9_availability);
    ("e10", e10_loops);
    ("e11", e11_pg_state);
    ("e12", e12_churn);
    ("e13", e13_database_distribution);
    ("e14", e14_replication);
    ("e15", e15_qos_routing);
    ("e16", e16_topology_effects);
    ("synth", synth);
    ("delta", delta);
    ("padmit", padmit);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let want_bechamel = List.mem "--bechamel" args in
  let selected = List.filter (fun a -> not (String.starts_with ~prefix:"--" a)) args in
  let to_run =
    match selected with
    | [] -> experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt (String.lowercase_ascii n) experiments with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" n
              (String.concat ", " (List.map fst experiments));
            None)
        names
  in
  print_endline
    "Reproduction harness: Breslau & Estrin, \"Design of Inter-Administrative";
  print_endline
    "Domain Routing Protocols\", SIGCOMM 1990. See EXPERIMENTS.md for the";
  print_endline "claim-by-claim comparison.";
  List.iter (fun (_, f) -> f ()) to_run;
  if want_bechamel then bechamel_benchmarks ()

(* Verifier for the trace smoke test (see bin/dune).

   Usage: trace_check TRACE.json [TRACE.json ...]

   Each file must parse as JSON and satisfy the Chrome trace-event
   invariants Pr_obs.Trace.to_json guarantees: well-formed events,
   non-decreasing timestamps, balanced span begin/end pairs per track
   (see Pr_obs.Trace.validate_json). Also requires at least one event,
   so an accidentally disabled recorder cannot pass. *)

module J = Pr_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("trace_check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check path =
  let doc =
    match J.parse (read_file path) with
    | Ok doc -> doc
    | Error e -> fail "%s is not JSON: %s" path e
  in
  (match Pr_obs.Trace.validate_json doc with
  | Ok () -> ()
  | Error e -> fail "%s: %s" path e);
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List evs) -> List.length evs
    | _ -> fail "%s: missing traceEvents" path
  in
  if events = 0 then fail "%s: empty trace" path;
  Printf.printf "trace_check: %s ok (%d events)\n" path events

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as paths) -> List.iter check paths
  | _ -> fail "usage: trace_check TRACE.json [TRACE.json ...]"

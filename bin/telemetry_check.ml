(* Validator for the two telemetry document kinds the CLI emits:

     telemetry-snapshot  (prx serve --metrics, prx stats --out,
                          campaign summary "telemetry" sub-documents)
     post-mortem         (flight-recorder dumps from prx chaos /
                          prx serve)

   Dispatches on the "document" field. Snapshots must parse through
   Registry.snapshot_of_json, survive a JSON round-trip, and render to
   Prometheus text; repeated --require NAME flags assert that a metric
   of that name is present. Post-mortems must carry a nonempty reason
   and at least one event; repeated --expect-event NAME flags assert
   an event of that name was recorded, and an embedded "metrics"
   snapshot (if any) is validated like a standalone one.

   Usage: telemetry_check FILE [--require NAME]... [--expect-event NAME]...
   Exit 0 on success, 1 on validation failure, 2 on usage error. *)

module J = Pr_util.Json
module Reg = Pr_telemetry.Registry

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("telemetry_check: " ^ s); exit 1) fmt

let usage () =
  prerr_endline
    "usage: telemetry_check FILE [--require NAME]... [--expect-event NAME]...";
  exit 2

let check_snapshot ~requires json =
  let snap =
    match Reg.snapshot_of_json json with
    | Ok s -> s
    | Error e -> fail "snapshot does not parse: %s" e
  in
  (* Round-trip: re-emitting and re-parsing must preserve the snapshot
     (names, kinds, counts) — the property campaign merging relies on. *)
  (match Reg.snapshot_of_json (Reg.snapshot_to_json snap) with
  | Error e -> fail "snapshot does not round-trip: %s" e
  | Ok snap' ->
    if List.length snap' <> List.length snap then
      fail "round-trip changed metric count: %d -> %d" (List.length snap)
        (List.length snap');
    List.iter2
      (fun (n, _) (n', _) ->
        if n <> n' then fail "round-trip changed metric name: %s -> %s" n n')
      snap snap');
  (* Exposition must render and mention every metric's sanitized name. *)
  let prom = Reg.to_prometheus snap in
  if snap <> [] && String.length prom = 0 then
    fail "Prometheus exposition is empty for a nonempty snapshot";
  List.iter
    (fun name ->
      if not (List.mem_assoc name snap) then
        fail "required metric %S missing from snapshot" name)
    requires;
  List.length snap

let check_post_mortem ~expected json =
  (match J.string_member "reason" json with
  | Ok "" -> fail "post-mortem has an empty reason"
  | Ok _ -> ()
  | Error e -> fail "post-mortem: %s" e);
  let events =
    match J.member "events" json with
    | Some ev -> (
      match J.to_list ev with
      | Ok l -> l
      | Error e -> fail "post-mortem events: %s" e)
    | None -> fail "post-mortem has no events field"
  in
  if events = [] then fail "post-mortem recorded no events";
  let names =
    List.filter_map
      (fun ev -> Result.to_option (J.string_member "name" ev))
      events
  in
  if List.length names <> List.length events then
    fail "post-mortem contains an event without a name";
  List.iter
    (fun name ->
      if not (List.mem name names) then
        fail "expected event %S not in the flight recorder" name)
    expected;
  (match J.member "metrics" json with
  | Some m -> ignore (check_snapshot ~requires:[] m)
  | None -> ());
  List.length events

let () =
  let file = ref None and requires = ref [] and expected = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--require" :: name :: rest ->
      requires := name :: !requires;
      parse_args rest
    | "--expect-event" :: name :: rest ->
      expected := name :: !expected;
      parse_args rest
    | arg :: rest when !file = None && String.length arg > 0 && arg.[0] <> '-'
      ->
      file := Some arg;
      parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let contents =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let json =
    match J.parse contents with
    | Ok j -> j
    | Error e -> fail "%s: %s" file e
  in
  match J.string_member "document" json with
  | Ok "telemetry-snapshot" ->
    let n = check_snapshot ~requires:!requires json in
    Printf.printf "telemetry_check: %s ok (%d metrics)\n" file n
  | Ok "post-mortem" ->
    if !requires <> [] then
      fail "--require applies to snapshots, not post-mortems";
    let n = check_post_mortem ~expected:!expected json in
    Printf.printf "telemetry_check: %s ok (%d events)\n" file n
  | Ok other -> fail "%s: unknown document kind %S" file other
  | Error e -> fail "%s: %s" file e

(* Verifier for the campaign smoke test (see bin/dune).

   Usage: campaign_check RESULTS.jsonl FRESH_SUMMARY.json BASELINE.json

   The smoke runs a toy campaign twice — first with one injected
   worker crash and one injected hang, then again to resume — so the
   results file must show: every line well-formed; the crashed and
   timed-out attempts on record; every run's *latest* attempt ok; and
   exactly the completed runs skipped on resume (no id attempted more
   than twice). The fresh summary's deterministic totals must match
   the committed baseline (wall-clock fields are ignored). *)

module J = Pr_util.Json

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("campaign_check: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let results, fresh, baseline =
    match Sys.argv with
    | [| _; r; f; b |] -> (r, f, b)
    | _ -> fail "usage: campaign_check RESULTS.jsonl FRESH_SUMMARY.json BASELINE.json"
  in
  (* 1. Every line parses and carries id + status. *)
  let lines =
    read_file results |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let attempts = Hashtbl.create 16 in
  let statuses = ref [] in
  List.iteri
    (fun i line ->
      match J.parse line with
      | Error e -> fail "line %d of %s is not JSON: %s" (i + 1) results e
      | Ok record ->
        let id =
          match J.string_member "id" record with
          | Ok id -> id
          | Error e -> fail "line %d of %s: %s" (i + 1) results e
        in
        let status =
          match J.string_member "status" record with
          | Ok s -> s
          | Error e -> fail "line %d of %s: %s" (i + 1) results e
        in
        Hashtbl.replace attempts id (1 + Option.value (Hashtbl.find_opt attempts id) ~default:0);
        statuses := status :: !statuses)
    lines;
  (* 2. Fault injection left its trace, and the pool survived it. *)
  if not (List.mem "crashed" !statuses) then fail "no crashed attempt on record";
  if not (List.mem "timed-out" !statuses) then fail "no timed-out attempt on record";
  (* 3. Resume semantics: completed runs were attempted once, the two
     faulted runs exactly twice, and every latest attempt is ok. *)
  Hashtbl.iter
    (fun id n -> if n > 2 then fail "run %s attempted %d times: resume did not skip" id n)
    attempts;
  let retried = Hashtbl.fold (fun _ n acc -> if n = 2 then acc + 1 else acc) attempts 0 in
  if retried <> 2 then fail "%d runs were re-attempted, expected exactly the 2 faulted ones" retried;
  let sink = Pr_campaign.Sink.read ~path:results in
  if sink.Pr_campaign.Sink.malformed <> 0 then
    fail "%d malformed lines in %s" sink.Pr_campaign.Sink.malformed results;
  List.iter
    (fun (id, record) ->
      match J.string_member "status" record with
      | Ok "ok" -> ()
      | Ok s -> fail "latest attempt of %s is %S, not ok" id s
      | Error e -> fail "latest attempt of %s: %s" id e)
    sink.Pr_campaign.Sink.records;
  (* 4. Deterministic totals match the committed baseline. *)
  let parse_doc path =
    match J.parse (read_file path) with
    | Ok v -> v
    | Error e -> fail "%s is not JSON: %s" path e
  in
  let fresh_doc = parse_doc fresh in
  let baseline_doc = parse_doc baseline in
  let rows doc =
    match J.member "per_design_point" doc with
    | Some (J.List rows) ->
      List.map
        (fun row ->
          match J.string_member "protocol" row with
          | Ok p -> (p, row)
          | Error e -> fail "row without protocol: %s" e)
        rows
    | _ -> fail "missing per_design_point list"
  in
  let deterministic_fields =
    [
      "runs"; "ok"; "failed"; "crashed"; "timed_out"; "unconverged"; "budget_exhausted";
      "messages"; "bytes"; "computations"; "transit_computations"; "msgs_lost";
      "table_total"; "table_max"; "msg_max"; "delivered"; "flows"; "loop_violations";
      "blackhole_violations"; "containment_violations"; "updates_rejected"; "quarantines";
    ]
  in
  (* Per-AD skew columns: float-valued but computed deterministically
     from integer counters, so they must match the baseline exactly. *)
  let deterministic_float_fields = [ "msg_mean"; "msg_p90"; "tbl_p90" ] in
  let fresh_rows = rows fresh_doc and baseline_rows = rows baseline_doc in
  if List.length fresh_rows <> List.length baseline_rows then
    fail "summary has %d design-point rows, baseline %d" (List.length fresh_rows)
      (List.length baseline_rows);
  List.iter
    (fun (protocol, brow) ->
      match List.assoc_opt protocol fresh_rows with
      | None -> fail "baseline protocol %s missing from fresh summary" protocol
      | Some frow ->
        List.iter
          (fun field ->
            let get row =
              match J.int_member field row with
              | Ok v -> v
              | Error e -> fail "%s row %s: %s" protocol field e
            in
            if get frow <> get brow then
              fail "%s.%s drifted: fresh %d, baseline %d" protocol field (get frow)
                (get brow))
          deterministic_fields;
        List.iter
          (fun field ->
            let get row =
              match J.float_member field row with
              | Ok v -> v
              | Error e -> fail "%s row %s: %s" protocol field e
            in
            if get frow <> get brow then
              fail "%s.%s drifted: fresh %g, baseline %g" protocol field (get frow)
                (get brow))
          deterministic_float_fields)
    baseline_rows;
  Printf.printf "campaign_check: %d lines, %d runs, totals match baseline\n"
    (List.length lines) (Hashtbl.length attempts)

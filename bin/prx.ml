(* prx: the policy-routing explorer CLI.

   Subcommands expose the library's main entry points: topology
   generation, the Table 1 design space, and per-protocol evaluation
   runs on generated scenarios. The full experiment suite lives in
   bench/main.exe; this tool is for interactive exploration. *)

open Cmdliner

(* Shared Logs setup, composed into every subcommand: without it the
   pr.network / pr.campaign / pr.engine sources are unreachable from
   the CLI because no reporter is ever installed. Default level
   Warning, so engine event-limit warnings always surface. *)
let logs_term =
  let verbose_arg =
    let doc = "Log informational messages (e.g. link flaps) to stderr." in
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
  in
  let debug_arg =
    let doc = "Log debug messages (every send, fork and reap) to stderr." in
    Arg.(value & flag & info [ "debug" ] ~doc)
  in
  let setup verbose debug =
    let level =
      if debug then Logs.Debug else if verbose then Logs.Info else Logs.Warning
    in
    Logs.set_level (Some level);
    Logs.set_reporter (Logs.format_reporter ())
  in
  Term.(const setup $ verbose_arg $ debug_arg)

let seed_arg =
  let doc = "Deterministic seed for topology, policies and workload." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let size_arg =
  let doc = "Approximate number of ADs in the generated internet." in
  Arg.(value & opt int 56 & info [ "size" ] ~docv:"ADS" ~doc)

let flows_arg =
  let doc = "Number of flows in the workload." in
  Arg.(value & opt int 100 & info [ "flows" ] ~docv:"N" ~doc)

let restrictiveness_arg =
  let doc = "Policy restrictiveness in [0,1]." in
  Arg.(value & opt float 0.3 & info [ "restrictiveness" ] ~docv:"R" ~doc)

let granularity_arg =
  let doc = "Policy granularity: coarse, destination, source-specific or fine." in
  let gran_conv =
    Arg.enum
      [
        ("coarse", Pr_policy.Gen.Coarse);
        ("destination", Pr_policy.Gen.Destination);
        ("source-specific", Pr_policy.Gen.Source_specific);
        ("fine", Pr_policy.Gen.Fine);
      ]
  in
  Arg.(
    value
    & opt gran_conv Pr_policy.Gen.Source_specific
    & info [ "granularity" ] ~docv:"G" ~doc)

let shards_arg =
  let doc =
    "Partition the simulation across N engine shards (OCaml domains). Results are \
     deterministic per (seed, shard count), and identical to the sequential engine \
     for scheduled-only workloads."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let scenario_of ~seed ~size ~restrictiveness ~granularity =
  let policy =
    { Pr_policy.Gen.default with restrictiveness; granularity }
  in
  Pr_core.Scenario.for_size ~policy ~target_ads:size ~seed ()

(* --- design-space ------------------------------------------------- *)

let design_space_cmd =
  let run () = print_string (Pr_core.Design_space.render ()) in
  Cmd.v
    (Cmd.info "design-space" ~doc:"Print the paper's Table 1 with implemented protocols.")
    Term.(const run $ logs_term)

let save_arg =
  let doc = "Save the generated scenario (topology + policies) to this file." in
  Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)

let load_arg =
  let doc = "Load the scenario from a file written by --save instead of generating." in
  Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE" ~doc)

let scenario_of_args ~seed ~size ~restrictiveness ~granularity ~load =
  match load with
  | None -> scenario_of ~seed ~size ~restrictiveness ~granularity
  | Some path -> (
    match Pr_core.Codec.load_file ~path with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "cannot load %s: %s\n" path e;
      exit 1)

(* --- topology ----------------------------------------------------- *)

let topology_cmd =
  let run () seed size save =
    let s = scenario_of ~seed ~size ~restrictiveness:0.3 ~granularity:Pr_policy.Gen.Source_specific in
    (match save with
    | Some path ->
      Pr_core.Codec.save_file s ~path;
      Format.printf "saved scenario to %s@." path
    | None -> ());
    let g = s.Pr_core.Scenario.graph in
    Format.printf "%a@." Pr_topology.Graph.pp_summary g;
    Format.printf "connected: %b, cyclic: %b@." (Pr_topology.Graph.is_connected g)
      (Pr_topology.Graph.has_cycle g);
    Pr_topology.Graph.fold_links g ~init:() ~f:(fun () l ->
        let name ad = (Pr_topology.Graph.ad g ad).Pr_topology.Ad.name in
        Format.printf "  %-8s -- %-8s %-12s cost %d@." (name l.Pr_topology.Link.a)
          (name l.Pr_topology.Link.b)
          (Pr_topology.Link.kind_to_string l.Pr_topology.Link.kind)
          l.Pr_topology.Link.cost)
  in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate and print a hierarchical internet.")
    Term.(const run $ logs_term $ seed_arg $ size_arg $ save_arg)

(* --- evaluate ----------------------------------------------------- *)

let evaluate_cmd =
  let run () seed size flows restrictiveness granularity load =
    let scenario = scenario_of_args ~seed ~size ~restrictiveness ~granularity ~load in
    let rng = Pr_util.Rng.create (seed + 1) in
    let workload = Pr_core.Scenario.flows scenario ~rng ~count:flows () in
    Format.printf "scenario %s: %a; %a@." scenario.Pr_core.Scenario.label
      Pr_topology.Graph.pp_summary scenario.Pr_core.Scenario.graph
      Pr_policy.Config.pp_summary scenario.Pr_core.Scenario.config;
    let table = Pr_util.Texttable.create ~columns:Pr_core.Experiment.result_columns in
    let n = Pr_topology.Graph.n scenario.Pr_core.Scenario.graph in
    let protocols =
      (* Per-source route replication is the quadratic-state variant the
         paper warns about; only run it where it can finish. *)
      List.filter
        (fun p -> Pr_core.Registry.name p <> "idrp-per-source" || n <= 30)
        Pr_core.Registry.all
    in
    List.iter
      (fun packed ->
        let r = Pr_core.Experiment.evaluate packed scenario ~flows:workload () in
        Pr_util.Texttable.add_row table (Pr_core.Experiment.result_row r))
      protocols;
    Pr_util.Texttable.print ~title:"protocol comparison" table
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"Run every protocol on one scenario and compare against the policy oracle.")
    Term.(
      const run $ logs_term $ seed_arg $ size_arg $ flows_arg $ restrictiveness_arg
      $ granularity_arg $ load_arg)

(* --- dot ----------------------------------------------------------- *)

let dot_cmd =
  let run () seed size =
    let s =
      scenario_of ~seed ~size ~restrictiveness:0.0 ~granularity:Pr_policy.Gen.Coarse
    in
    print_string (Pr_topology.Dot.to_dot s.Pr_core.Scenario.graph)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the generated internet as a Graphviz document on stdout.")
    Term.(const run $ logs_term $ seed_arg $ size_arg)

(* --- oracle -------------------------------------------------------- *)

let oracle_cmd =
  let src_arg =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"AD" ~doc:"Source AD id.")
  in
  let dst_arg =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"AD" ~doc:"Destination AD id.")
  in
  let run () seed size restrictiveness granularity src dst =
    let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
    let g = scenario.Pr_core.Scenario.graph in
    let config = scenario.Pr_core.Scenario.config in
    let flow = Pr_policy.Flow.make ~src ~dst () in
    (match Pr_policy.Validate.best_legal g config flow ~max_hops:12 with
    | Some best ->
      Format.printf "best legal route: %s (cost %s)@."
        (Pr_topology.Path.to_string best)
        (match Pr_topology.Path.cost g best with
        | Some c -> string_of_int c
        | None -> "?")
    | None -> Format.printf "no legal route within 12 hops@.");
    let all =
      Pr_policy.Validate.legal_paths g config flow ~max_hops:8 ~limit:10 ()
    in
    Format.printf "%d legal route(s) within 8 hops (showing up to 10):@."
      (List.length all);
    List.iter (fun p -> Format.printf "  %s@." (Pr_topology.Path.to_string p)) all
  in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Query the policy oracle for legal routes between two ADs.")
    Term.(
      const run $ logs_term $ seed_arg $ size_arg $ restrictiveness_arg $ granularity_arg
      $ src_arg $ dst_arg)

(* --- impact -------------------------------------------------------- *)

let impact_cmd =
  let ad_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "ad" ] ~docv:"AD" ~doc:"Transit AD whose policy change to assess.")
  in
  let closed_arg =
    let doc = "Assess closing the AD entirely (no transit) instead of opening it." in
    Arg.(value & flag & info [ "close" ] ~doc)
  in
  let run () seed size restrictiveness granularity ad close =
    let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
    let proposed =
      if close then Pr_policy.Transit_policy.no_transit ad
      else Pr_policy.Transit_policy.open_transit ad
    in
    let report = Pr_core.Impact.assess scenario ~proposed () in
    print_string (Pr_core.Impact.summary report)
  in
  Cmd.v
    (Cmd.info "impact"
       ~doc:
         "Predict the impact of replacing one AD's transit policy (section 6's \
          administrator tool).")
    Term.(
      const run $ logs_term $ seed_arg $ size_arg $ restrictiveness_arg $ granularity_arg
      $ ad_arg $ closed_arg)

(* --- conformance ---------------------------------------------------- *)

let conformance_cmd =
  let protocol_arg =
    let doc = "Protocol name (see `prx design-space`); default: all." in
    Arg.(value & opt (some string) None & info [ "protocol" ] ~docv:"NAME" ~doc)
  in
  let run () seed size restrictiveness granularity protocol =
    let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
    let protocols =
      match protocol with
      | Some name -> (
        match Pr_core.Registry.find_opt name with
        | Some p -> [ p ]
        | None ->
          Printf.eprintf "prx: unknown protocol %S (known: %s)\n" name
            (String.concat ", " (Pr_core.Registry.names Pr_core.Registry.all));
          exit 1)
      | None ->
        List.filter
          (fun p -> Pr_core.Registry.name p <> "idrp-per-source")
          Pr_core.Registry.all
    in
    let failures = ref 0 in
    List.iter
      (fun packed ->
        List.iter
          (fun (prop, check) ->
            if
              not
                (Pr_core.Registry.name packed = "egp" && prop = "survives fail/restore")
            then begin
              match check packed scenario with
              | Ok () ->
                Format.printf "ok    %-18s %s@." (Pr_core.Registry.name packed) prop
              | Error reason ->
                incr failures;
                Format.printf "FAIL  %-18s %s: %s@." (Pr_core.Registry.name packed) prop
                  reason
            end)
          Pr_core.Properties.all)
      protocols;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:"Run the behavioural conformance properties against protocols on a scenario.")
    Term.(
      const run $ logs_term $ seed_arg $ size_arg $ restrictiveness_arg $ granularity_arg
      $ protocol_arg)

(* --- sweep ---------------------------------------------------------- *)

(* The campaign front end: a declarative grid over (protocol × size ×
   policy × churn × replicate), executed by the pr_campaign forked
   worker pool with JSONL checkpoint/resume. *)

let sweep_cmd =
  let open Pr_campaign in
  let known_protocols () = Pr_core.Registry.names Pr_core.Registry.all in
  let protocols_conv =
    let parse s =
      match s with
      | "designs" -> Ok (Pr_core.Registry.names Pr_core.Registry.policy_designs)
      | "baselines" -> Ok (Pr_core.Registry.names Pr_core.Registry.baselines)
      | "all" -> Ok (known_protocols ())
      | s -> (
        let names = String.split_on_char ',' s in
        match
          List.filter (fun n -> Option.is_none (Pr_core.Registry.find_opt n)) names
        with
        | [] -> Ok names
        | unknown ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown protocol (design point) %s; known protocols: %s; or one of \
                   the groups: designs, baselines, all"
                  (String.concat ", " (List.map (Printf.sprintf "%S") unknown))
                  (String.concat ", " (known_protocols ())))))
    in
    Arg.conv ~docv:"PROTOCOLS"
      (parse, fun ppf ps -> Format.pp_print_string ppf (String.concat "," ps))
  in
  let protocols_arg =
    let doc =
      "Comma-separated protocol (design point) names, or a group: designs (the four \
       section-5 points), baselines, all."
    in
    Arg.(
      value
      & opt protocols_conv (Pr_core.Registry.names Pr_core.Registry.policy_designs)
      & info [ "protocols" ] ~docv:"PROTOCOLS" ~doc)
  in
  let sizes_arg =
    let doc = "Comma-separated internet sizes (AD counts); 14 and below is Figure 1." in
    Arg.(value & opt (list int) [ 14; 56 ] & info [ "sizes" ] ~docv:"SIZES" ~doc)
  in
  let restrictiveness_list_arg =
    let doc = "Comma-separated policy restrictiveness values in [0,1]." in
    Arg.(
      value & opt (list float) [ 0.0; 0.5 ] & info [ "restrictiveness" ] ~docv:"RS" ~doc)
  in
  let granularities_arg =
    let doc = "Comma-separated policy granularities." in
    let gran_conv =
      Arg.enum
        [
          ("coarse", Pr_policy.Gen.Coarse);
          ("destination", Pr_policy.Gen.Destination);
          ("source-specific", Pr_policy.Gen.Source_specific);
          ("fine", Pr_policy.Gen.Fine);
        ]
    in
    Arg.(
      value
      & opt (list gran_conv) [ Pr_policy.Gen.Source_specific ]
      & info [ "granularities" ] ~docv:"GS" ~doc)
  in
  let churn_arg =
    let doc = "Churn dimension: both (default), on, or off." in
    Arg.(
      value
      & opt (Arg.enum [ ("both", [ false; true ]); ("on", [ true ]); ("off", [ false ]) ])
          [ false; true ]
      & info [ "churn" ] ~docv:"CHURN" ~doc)
  in
  let faults_arg =
    let doc =
      "Comma-separated fault-profile dimension (see `prx chaos`): none, default, \
       crash, partition, storm, lossy."
    in
    let profile_conv =
      let parse s =
        match Pr_faults.Plan.profile s with
        | Some _ -> Ok s
        | None ->
          Error
            (`Msg
               (Printf.sprintf "unknown fault profile %S; known profiles: %s" s
                  (String.concat ", " Pr_faults.Plan.profile_names)))
      in
      Arg.conv ~docv:"PROFILE" (parse, Format.pp_print_string)
    in
    Arg.(value & opt (list profile_conv) [ "none" ] & info [ "faults" ] ~docv:"PROFILES" ~doc)
  in
  let replicates_arg =
    let doc = "Seed replicates per grid point." in
    Arg.(value & opt int 1 & info [ "replicates" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc = "Parallel worker processes." in
    Arg.(value & opt int 4 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Per-run wall-clock timeout in seconds." in
    Arg.(value & opt float 120.0 & info [ "timeout" ] ~docv:"SECS" ~doc)
  in
  let max_events_arg =
    let doc = "Simulation event budget per converge call." in
    Arg.(value & opt int 10_000_000 & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc =
      "JSONL results file (appended, never truncated); re-invoking resumes from it, \
       re-running only runs whose latest attempt did not complete."
    in
    Arg.(value & opt string "campaign.jsonl" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let summary_arg =
    let doc = "Write the machine-readable aggregate summary here (\"none\" disables)." in
    Arg.(value & opt string "BENCH_campaign.json" & info [ "summary" ] ~docv:"FILE" ~doc)
  in
  let crash_run_arg =
    let doc = "Testing: the worker for this run id crashes (exit 66)." in
    Arg.(value & opt (some string) None & info [ "crash-run" ] ~docv:"ID" ~doc)
  in
  let hang_run_arg =
    let doc = "Testing: the worker for this run id hangs until the timeout kills it." in
    Arg.(value & opt (some string) None & info [ "hang-run" ] ~docv:"ID" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-run progress on stderr." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let trace_dir_arg =
    let doc =
      "Write one Chrome trace-event file per run (plus the pool's worker timeline as \
       pool.json) into this directory, created if missing."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"DIR" ~doc)
  in
  let run () protocols sizes restrictiveness granularities churn fault_profiles
      replicates seed flows max_events jobs timeout out summary crash_id hang_id quiet
      trace_dir shards =
    let spec =
      {
        Grid.protocols;
        sizes;
        restrictiveness;
        granularities;
        churn;
        fault_profiles;
        replicates;
        base_seed = seed;
        flows;
        max_events;
      }
    in
    let summary_path = if summary = "none" then None else Some summary in
    let report =
      Driver.sweep ~jobs ~timeout_s:timeout ~quiet
        ~chaos:{ Exec.crash_id; hang_id }
        ?summary_path ?trace_dir ~shards ~out spec
    in
    Pr_util.Texttable.print ~title:"campaign: per-design-point totals"
      (Pr_campaign.Aggregate.table report.Driver.rows);
    Printf.printf
      "campaign: %d runs in grid, %d skipped (already complete), %d executed (%d ok, %d \
       failed/crashed/timed-out)\nresults: %s%s\n"
      report.Driver.total report.Driver.skipped report.Driver.executed report.Driver.ok
      report.Driver.not_ok out
      (match summary_path with Some p -> Printf.sprintf "; summary: %s" p | None -> "");
    Option.iter (fun dir -> Printf.printf "traces: %s/\n" dir) trace_dir
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a parallel experiment campaign over (design point x topology x policy x \
          churn) with JSONL checkpoint/resume and per-design-point aggregation.")
    Term.(
      const run $ logs_term $ protocols_arg $ sizes_arg $ restrictiveness_list_arg
      $ granularities_arg $ churn_arg $ faults_arg $ replicates_arg $ seed_arg
      $ flows_arg $ max_events_arg $ jobs_arg $ timeout_arg $ out_arg $ summary_arg
      $ crash_run_arg $ hang_run_arg $ quiet_arg $ trace_dir_arg $ shards_arg)

(* --- converge ------------------------------------------------------- *)

(* One bounded convergence run, optionally on the sharded engine: the
   smallest harness for the engine-equivalence contract. The metrics
   dump is byte-stable per (seed, scenario, shard count), so two
   invocations differing only in --shards must produce identical
   files for deterministic workloads — the runtest smoke cmp(1)s them. *)

let converge_cmd =
  let protocol_arg =
    let doc = "Protocol (design point) to converge; see `prx design-space`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let churn_flag =
    let doc = "Interleave scheduled link churn (its own rng stream) with convergence." in
    Arg.(value & flag & info [ "churn" ] ~doc)
  in
  let max_events_arg =
    let doc = "Simulation event budget." in
    Arg.(value & opt int 10_000_000 & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let metrics_out_arg =
    let doc = "Write the final per-AD metrics as single-line JSON to this file." in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let run () protocol seed size restrictiveness granularity churn shards max_events
      metrics_out =
    match Pr_core.Registry.find_opt protocol with
    | None ->
      Printf.eprintf "prx: unknown protocol %S (known: %s)\n" protocol
        (String.concat ", " (Pr_core.Registry.names Pr_core.Registry.all));
      exit 2
    | Some (Pr_core.Registry.Packed (module P)) ->
      let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
      let module R = Pr_proto.Runner.Make (P) in
      let r =
        R.setup ~shards scenario.Pr_core.Scenario.graph
          scenario.Pr_core.Scenario.config
      in
      if churn then
        Pr_sim.Churn.schedule (R.network r)
          (Pr_util.Rng.derive seed "churn")
          ~events:6 ~spacing:4.0 ();
      let c = R.converge ~max_events r in
      let engine = Pr_sim.Network.engine (R.network r) in
      Format.printf "%s on %s (shards=%d): %a@." protocol
        scenario.Pr_core.Scenario.label
        (Pr_sim.Engine.shard_count engine)
        Pr_proto.Runner.pp_convergence c;
      Printf.printf "table entries: %d (max %d)\n" (R.table_entries r)
        (R.max_table_entries r);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Pr_util.Json.to_string (Pr_sim.Metrics.to_json (R.metrics r)));
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics: %s\n" path)
        metrics_out
  in
  Cmd.v
    (Cmd.info "converge"
       ~doc:
         "Converge one protocol on a generated scenario — optionally on the sharded \
          multicore engine (--shards) — and print the convergence totals.")
    Term.(
      const run $ logs_term $ protocol_arg $ seed_arg $ size_arg $ restrictiveness_arg
      $ granularity_arg $ churn_flag $ shards_arg $ max_events_arg $ metrics_out_arg)

(* --- trace ---------------------------------------------------------- *)

(* One traced simulation run: converge + workload with an enabled
   recorder, a Chrome trace on disk, and the convergence timeline and
   per-AD load profile printed. *)

let trace_cmd =
  let protocol_arg =
    let doc = "Protocol (design point) to trace; see `prx design-space`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let out_arg =
    let doc = "Chrome trace-event output file (open in Perfetto or chrome://tracing)." in
    Arg.(value & opt string "trace.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let window_arg =
    let doc = "Timeline sampling window in simulated time units." in
    Arg.(value & opt float 1.0 & info [ "window" ] ~docv:"W" ~doc)
  in
  let max_events_arg =
    let doc = "Simulation event budget." in
    Arg.(value & opt int 10_000_000 & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let run () protocol seed size flows restrictiveness granularity window shards
      max_events out =
    match Pr_core.Registry.find_opt protocol with
    | None ->
      Printf.eprintf "prx: unknown protocol %S (known: %s)\n" protocol
        (String.concat ", " (Pr_core.Registry.names Pr_core.Registry.all));
      exit 1
    | Some (Pr_core.Registry.Packed (module P)) ->
      let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
      let g = scenario.Pr_core.Scenario.graph in
      let module R = Pr_proto.Runner.Make (P) in
      let trace = Pr_obs.Trace.create () in
      let r = R.setup ~trace ~shards g scenario.Pr_core.Scenario.config in
      let m = R.metrics r in
      let table_total () =
        let acc = ref 0 in
        for ad = 0 to Pr_topology.Graph.n g - 1 do
          acc := !acc + P.table_entries (R.protocol r) ad
        done;
        !acc
      in
      let tl =
        Pr_obs.Timeline.create ~window
          ~series:[ "messages"; "computations"; "table-entries" ]
          ~probe:(fun () ->
            [|
              float_of_int (Pr_sim.Metrics.messages m);
              float_of_int (Pr_sim.Metrics.computations m);
              float_of_int (table_total ());
            |])
          trace
      in
      let engine = Pr_sim.Network.engine (R.network r) in
      Pr_sim.Engine.set_observer engine
        (Some (fun ~time ~pending:_ -> Pr_obs.Timeline.observe tl ~now:time));
      let c = R.converge ~max_events r in
      let rng = Pr_util.Rng.create (seed + 2) in
      let workload = Pr_core.Scenario.flows scenario ~rng ~count:flows () in
      let delivered =
        List.fold_left
          (fun acc f ->
            if Pr_proto.Forwarding.delivered (R.send_flow r f) then acc + 1 else acc)
          0 workload
      in
      Pr_obs.Timeline.finish tl ~now:(Pr_sim.Engine.now engine);
      Pr_obs.Trace.write ~path:out trace;
      Format.printf "%s on %s: %a; delivered %d/%d@." protocol
        scenario.Pr_core.Scenario.label Pr_proto.Runner.pp_convergence c delivered flows;
      Pr_util.Texttable.print ~title:"convergence timeline" (Pr_obs.Timeline.table tl);
      (match Pr_obs.Timeline.first_nonzero tl "table-entries" with
      | Some ts -> Printf.printf "time to first route:  %.2f\n" ts
      | None -> print_string "time to first route:  never\n");
      Printf.printf "time to quiescence:   %.2f\n" (Pr_obs.Timeline.quiescence tl);
      let per_ad_tables =
        Array.init (Pr_topology.Graph.n g) (fun ad ->
            float_of_int (P.table_entries (R.protocol r) ad))
      in
      let profile =
        Pr_obs.Load_profile.of_series
          (Pr_sim.Metrics.load_series m @ [ ("table-entries", per_ad_tables) ])
      in
      Pr_util.Texttable.print ~title:"per-AD load profile" (Pr_obs.Load_profile.table profile);
      Printf.printf "trace: %s (%d events%s)\n" out (Pr_obs.Trace.length trace)
        (let d = Pr_obs.Trace.dropped trace in
         if d = 0 then "" else Printf.sprintf ", %d dropped" d)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one protocol with tracing enabled: write a Perfetto-loadable Chrome trace \
          and print the convergence timeline and per-AD load profile.")
    Term.(
      const run $ logs_term $ protocol_arg $ seed_arg $ size_arg $ flows_arg
      $ restrictiveness_arg $ granularity_arg $ window_arg $ shards_arg
      $ max_events_arg $ out_arg)

(* --- chaos ---------------------------------------------------------- *)

(* One protocol through the fault-injection gauntlet: compile a fault
   plan onto the event queue, converge through it, and check the
   resilience invariants (loop-freedom, no blackholes, reconvergence).
   Violations exit non-zero, so this doubles as a CI gate. *)

let chaos_cmd =
  let protocol_arg =
    let doc =
      "Protocol (design point) to torture; see `prx design-space`. The deliberately \
       broken variant $(b,broken-ls) is also accepted — the harness must flag it."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let plan_arg =
    let doc =
      "Fault plan: a profile name or $(b,profile:)NAME (see $(b,--list-profiles)) or a \
       spec like \"delay:p=0.25,max=2,until=40;crash:at=14,down=8\". Adversarial \
       profiles ($(b,byzantine), $(b,leak), $(b,chatter)) add a Byzantine attacker."
    in
    Arg.(value & opt string "default" & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let list_profiles_flag =
    let doc = "List the named fault profiles with their expanded plans, then exit." in
    Arg.(value & flag & info [ "list-profiles" ] ~doc)
  in
  let no_guard_flag =
    let doc =
      "Disable the update guard (validation, flap damping, quarantine): measure the \
       undefended protocol."
    in
    Arg.(value & flag & info [ "no-guard" ] ~doc)
  in
  let probes_arg =
    let doc = "Number of probe flows checked against the invariants." in
    Arg.(value & opt int 40 & info [ "probes" ] ~docv:"N" ~doc)
  in
  let churn_flag =
    let doc = "Interleave scheduled link churn (its own rng stream) with the plan." in
    Arg.(value & flag & info [ "churn" ] ~doc)
  in
  let max_events_arg =
    let doc = "Simulation event budget (exhaustion is a no-reconvergence violation)." in
    Arg.(value & opt int 10_000_000 & info [ "max-events" ] ~docv:"N" ~doc)
  in
  let report_arg =
    let doc = "Write the full deterministic report as JSON to this file." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let post_mortem_arg =
    let doc =
      "On any invariant violation, dump the flight recorder plus a telemetry snapshot \
       to this post-mortem JSON file (\"none\" disables)."
    in
    Arg.(value & opt string "prx-postmortem.json" & info [ "post-mortem" ] ~docv:"FILE" ~doc)
  in
  let run () protocol seed size probes restrictiveness granularity churn shards
      max_events plan_str list_profiles no_guard report_path post_mortem =
    if list_profiles then begin
      List.iter
        (fun (name, p) ->
          let spec = Pr_faults.Plan.to_string p in
          Printf.printf "%-10s %s\n" name (if spec = "" then "(no faults)" else spec))
        Pr_faults.Plan.profiles;
      exit 0
    end;
    let bad_plan reason =
      Printf.eprintf "prx: bad --plan %S: %s\n%s\n" plan_str reason
        Pr_faults.Plan.grammar_help;
      exit 2
    in
    let plan =
      let named = Pr_faults.Plan.profile in
      match String.index_opt plan_str ':' with
      | Some 7 when String.sub plan_str 0 7 = "profile" -> (
        let name = String.sub plan_str 8 (String.length plan_str - 8) in
        match named name with
        | Some p -> p
        | None -> bad_plan (Printf.sprintf "unknown profile %S" name))
      | _ -> (
        match named plan_str with
        | Some p -> p
        | None -> (
          match Pr_faults.Plan.of_string plan_str with
          | Ok p -> p
          | Error e -> bad_plan e))
    in
    let protocol =
      match protocol with
      | Some p -> p
      | None ->
        Printf.eprintf "prx: a PROTOCOL argument is required (or use --list-profiles)\n";
        exit 2
    in
    match Pr_faults.Chaos.find_protocol protocol with
    | None ->
      Printf.eprintf "prx: unknown protocol %S (known: %s, broken-ls)\n" protocol
        (String.concat ", " (Pr_core.Registry.names Pr_core.Registry.all));
      exit 2
    | Some packed ->
      let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
      let guard =
        if no_guard then Pr_guard.Guard.disabled else Pr_guard.Guard.default_config
      in
      let report =
        Pr_faults.Chaos.run ~plan ~guard ~probes
          ?churn:(if churn then Some (6, 4.0) else None)
          ~max_events ~shards packed scenario
      in
      Format.printf "%a@." Pr_faults.Chaos.pp report;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Pr_util.Json.to_string_pretty (Pr_faults.Chaos.report_json report));
          output_char oc '\n';
          close_out oc;
          Printf.printf "report: %s\n" path)
        report_path;
      if report.Pr_faults.Chaos.violations <> [] then begin
        (if post_mortem <> "none" then begin
           let module T = Pr_telemetry in
           let first = List.hd report.Pr_faults.Chaos.violations in
           T.Alloc.sample ();
           T.Flight.dump T.Flight.global
             ~metrics:(T.Registry.snapshot T.Registry.default)
             ~reason:
               (Printf.sprintf "chaos invariant violation: [%s] %s"
                  first.Pr_faults.Chaos.kind first.Pr_faults.Chaos.detail)
             ~path:post_mortem;
           Printf.printf "post-mortem: %s\n" post_mortem
         end);
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run one protocol under a deterministic fault plan (crashes, partitions, link \
          storms, message faults) and check the resilience invariants; exits 1 on any \
          violation.")
    Term.(
      const run $ logs_term $ protocol_arg $ seed_arg $ size_arg $ probes_arg
      $ restrictiveness_arg $ granularity_arg $ churn_flag $ shards_arg
      $ max_events_arg $ plan_arg $ list_profiles_flag $ no_guard_flag $ report_arg
      $ post_mortem_arg)

(* --- serve ---------------------------------------------------------- *)

(* The route-server serving layer under load: run the deterministic
   Daemon request loop (skewed workload + fault churn + policy flips)
   at each requested size, print the per-size report, optionally write
   the BENCH_serve.json document, and exit non-zero when any session is
   unhealthy (admission disagreement, handle leak, hash-cons
   violation, or zero answered queries). *)

let serve_cmd =
  let sizes_arg =
    let doc = "Comma-separated internet sizes (AD counts) to serve at." in
    Arg.(value & opt (list int) [ 56 ] & info [ "sizes" ] ~docv:"SIZES" ~doc)
  in
  let duration_arg =
    let doc = "Simulated time to run each session for." in
    Arg.(
      value
      & opt float Pr_serve.Daemon.default_config.Pr_serve.Daemon.duration
      & info [ "duration" ] ~docv:"T" ~doc)
  in
  let batch_arg =
    let doc = "Operations per batch event." in
    Arg.(
      value
      & opt int Pr_serve.Daemon.default_config.Pr_serve.Daemon.batch
      & info [ "batch" ] ~docv:"N" ~doc)
  in
  let interval_arg =
    let doc = "Simulated time between operation batches." in
    Arg.(
      value
      & opt float Pr_serve.Daemon.default_config.Pr_serve.Daemon.interval
      & info [ "interval" ] ~docv:"T" ~doc)
  in
  let plan_arg =
    let doc =
      "Fault plan: a profile name (none, default, crash, partition, storm, lossy, \
       byzantine, leak, chatter) or a spec like \
       \"delay:p=0.25,max=2,until=40;crash:at=14,down=8\". Adversarial profiles drive \
       the daemon into serve-stale degradation when the update guard quarantines a \
       flapping adjacency."
    in
    Arg.(value & opt string "default" & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let flip_every_arg =
    let doc = "Simulated time between transit-policy flips (0 disables them)." in
    Arg.(
      value
      & opt float Pr_serve.Daemon.default_config.Pr_serve.Daemon.flip_every
      & info [ "flip-every" ] ~docv:"T" ~doc)
  in
  let route_capacity_arg =
    let doc = "Route-cache capacity (LRU entries)." in
    Arg.(
      value
      & opt int Pr_serve.Daemon.default_config.Pr_serve.Daemon.route_capacity
      & info [ "route-capacity" ] ~docv:"N" ~doc)
  in
  let handle_capacity_arg =
    let doc = "Handle-table capacity (LRU entries)." in
    Arg.(
      value
      & opt int Pr_serve.Daemon.default_config.Pr_serve.Daemon.handle_capacity
      & info [ "handle-capacity" ] ~docv:"N" ~doc)
  in
  let check_every_arg =
    let doc = "Cross-check every Nth answered query three ways (0 disables)." in
    Arg.(
      value
      & opt int Pr_serve.Daemon.default_config.Pr_serve.Daemon.check_every
      & info [ "check-every" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Write the BENCH_serve.json document here (\"none\" disables)." in
    Arg.(value & opt string "none" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Write the final telemetry-registry snapshot (counters, gauges, latency \
       histograms) as JSON here (\"none\" disables)."
    in
    Arg.(value & opt string "none" & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let post_mortem_arg =
    let doc =
      "On any health-check failure, dump the flight recorder plus a telemetry snapshot \
       to this post-mortem JSON file (\"none\" disables)."
    in
    Arg.(value & opt string "prx-postmortem.json" & info [ "post-mortem" ] ~docv:"FILE" ~doc)
  in
  let run () seed sizes restrictiveness granularity duration batch interval plan_str
      flip_every route_capacity handle_capacity check_every out metrics_out post_mortem =
    let plan =
      match Pr_faults.Plan.profile plan_str with
      | Some p -> p
      | None -> (
        match Pr_faults.Plan.of_string plan_str with
        | Ok p -> p
        | Error e ->
          Printf.eprintf "prx: bad --plan %S: %s\n" plan_str e;
          exit 2)
    in
    if sizes = [] then begin
      Printf.eprintf "prx: --sizes must name at least one size\n";
      exit 2
    end;
    let reports =
      List.map
        (fun target_ads ->
          let cfg =
            {
              Pr_serve.Daemon.seed;
              target_ads;
              duration;
              batch;
              interval;
              plan;
              plan_name = plan_str;
              flip_every;
              route_capacity;
              handle_capacity;
              check_every;
              policy =
                { Pr_policy.Gen.default with restrictiveness; granularity };
              record_exact = false;
            }
          in
          let r = Pr_serve.Daemon.run cfg in
          Format.printf "%a@." Pr_serve.Daemon.pp_report r;
          r)
        sizes
    in
    (if out <> "none" then begin
       let oc = open_out out in
       output_string oc
         (Pr_util.Json.to_string_pretty (Pr_serve.Daemon.doc_json ~reports));
       output_char oc '\n';
       close_out oc;
       Printf.printf "results: %s\n" out
     end);
    (if metrics_out <> "none" then begin
       let module T = Pr_telemetry in
       T.Alloc.sample ();
       let oc = open_out metrics_out in
       output_string oc
         (Pr_util.Json.to_string_pretty
            (T.Registry.snapshot_to_json (T.Registry.snapshot T.Registry.default)));
       output_char oc '\n';
       close_out oc;
       Printf.printf "metrics: %s\n" metrics_out
     end);
    if not (List.for_all Pr_serve.Daemon.healthy reports) then begin
      (if post_mortem <> "none" then begin
         let module T = Pr_telemetry in
         let sick =
           List.filter (fun r -> not (Pr_serve.Daemon.healthy r)) reports
         in
         let describe (r : Pr_serve.Daemon.report) =
           Printf.sprintf "size %d: %s" r.Pr_serve.Daemon.ads
             (match r.Pr_serve.Daemon.self_check_error with
             | Some e -> e
             | None ->
               if r.Pr_serve.Daemon.agreement_failures > 0 then
                 Printf.sprintf "%d admission disagreements"
                   r.Pr_serve.Daemon.agreement_failures
               else "no queries answered")
         in
         T.Alloc.sample ();
         T.Flight.dump T.Flight.global
           ~metrics:(T.Registry.snapshot T.Registry.default)
           ~reason:
             ("serve health-check failure: "
             ^ String.concat "; " (List.map describe sick))
           ~path:post_mortem;
         Printf.printf "post-mortem: %s\n" post_mortem
       end);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the route-server query daemon on a simulated request stream concurrent \
          with fault-plan churn and policy flips; measures qps, query latency, diagram \
          rebuild latency and cache hit rates, and exits 1 on any health-check failure.")
    Term.(
      const run $ logs_term $ seed_arg $ sizes_arg $ restrictiveness_arg
      $ granularity_arg $ duration_arg $ batch_arg $ interval_arg $ plan_arg
      $ flip_every_arg $ route_capacity_arg $ handle_capacity_arg $ check_every_arg
      $ out_arg $ metrics_arg $ post_mortem_arg)

(* --- stats ---------------------------------------------------------- *)

(* One instrumented run, then the telemetry registry on stdout: converge
   a protocol on a generated scenario, route a workload through it, and
   print the process-global registry (engine/net counters, per-driver
   computation-work histograms, GC gauges) as Prometheus text
   exposition, optionally also as a JSON snapshot. *)

let stats_cmd =
  let protocol_arg =
    let doc = "Protocol (design point) to run; see `prx design-space`." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)
  in
  let out_arg =
    let doc = "Also write the snapshot as a telemetry-snapshot JSON document here." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let run () protocol seed size flows restrictiveness granularity out =
    match Pr_core.Registry.find_opt protocol with
    | None ->
      Printf.eprintf "prx: unknown protocol %S (known: %s)\n" protocol
        (String.concat ", " (Pr_core.Registry.names Pr_core.Registry.all));
      exit 2
    | Some packed ->
      let scenario = scenario_of ~seed ~size ~restrictiveness ~granularity in
      let rng = Pr_util.Rng.create (seed + 1) in
      let workload = Pr_core.Scenario.flows scenario ~rng ~count:flows () in
      ignore (Pr_core.Experiment.evaluate packed scenario ~flows:workload ());
      let module T = Pr_telemetry in
      T.Alloc.sample ();
      let snap = T.Registry.snapshot T.Registry.default in
      print_string (T.Registry.to_prometheus snap);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc
            (Pr_util.Json.to_string_pretty (T.Registry.snapshot_to_json snap));
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "snapshot: %s\n" path)
        out
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one protocol with full telemetry and print the metrics registry as \
          Prometheus text exposition.")
    Term.(
      const run $ logs_term $ protocol_arg $ seed_arg $ size_arg $ flows_arg
      $ restrictiveness_arg $ granularity_arg $ out_arg)

(* --- bench diff ----------------------------------------------------- *)

(* The regression gate: re-run the sessions a committed
   BENCH_serve.json was generated from (rows are self-describing; older
   rows fall back to the serve CLI defaults) and compare field by field
   under the declared tolerance bands — deterministic counters must
   match exactly, wall-clock figures within the timing band. Exits 1 on
   any out-of-band field, 2 when nothing could be compared. *)

let bench_cmd =
  let diff_cmd =
    let baseline_arg =
      let doc = "Committed benchmark document to gate against." in
      Arg.(
        value & opt string "BENCH_serve.json" & info [ "baseline" ] ~docv:"FILE" ~doc)
    in
    let sizes_arg =
      let doc = "Only re-run baseline rows with these target_ads sizes (default: all)." in
      Arg.(value & opt (list int) [] & info [ "sizes" ] ~docv:"SIZES" ~doc)
    in
    let tolerance_arg =
      let doc =
        "Relative tolerance band for wall-clock-derived fields (qps, latencies); \
         deterministic counters always compare exactly. Generous by default because \
         baselines cross machines."
      in
      Arg.(value & opt float 9.0 & info [ "timing-tolerance" ] ~docv:"TOL" ~doc)
    in
    let run () baseline sizes tolerance =
      let module J = Pr_util.Json in
      let module T = Pr_telemetry in
      let read_file path =
        try
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let c = really_input_string ic len in
          close_in ic;
          Ok c
        with Sys_error e -> Error e
      in
      let doc =
        match Result.bind (read_file baseline) J.parse with
        | Ok doc -> doc
        | Error e ->
          Printf.eprintf "prx: cannot read baseline %s: %s\n" baseline e;
          exit 2
      in
      let rows =
        match Option.map J.to_list (J.member "results" doc) with
        | Some (Ok l) -> l
        | _ ->
          Printf.eprintf "prx: %s: missing \"results\" list\n" baseline;
          exit 2
      in
      let compared = ref 0 in
      let failed = ref 0 in
      (* Shared per-row comparison tail: print failures, count them. *)
      let gate_row ~label ~spec ~baseline:row ~current =
        let outcomes = T.Gate.compare_row ~spec ~baseline:row ~current in
        List.iter
          (fun o ->
            if not o.T.Gate.ok then begin
              incr failed;
              Format.printf "  %a@." T.Gate.pp_outcome o
            end)
          outcomes;
        let bad = List.length (T.Gate.failures outcomes) in
        if bad = 0 then
          Printf.printf "  %s: %d field(s) within tolerance\n" label
            (List.length outcomes)
        else Printf.printf "  %s: %d field(s) OUT OF TOLERANCE\n" label bad
      in
      let gate_serve () =
        let seed = Result.value (J.int_member "seed" doc) ~default:42 in
        let plan_str = Result.value (J.string_member "plan" doc) ~default:"default" in
        let plan =
          match Pr_faults.Plan.profile plan_str with
          | Some p -> p
          | None -> (
            match Pr_faults.Plan.of_string plan_str with
            | Ok p -> p
            | Error e ->
              Printf.eprintf "prx: baseline has bad plan %S: %s\n" plan_str e;
              exit 2)
        in
        let spec = T.Gate.serve_spec ~timing_tolerance:tolerance in
        List.iter
          (fun row ->
            let cfg =
              Pr_serve.Daemon.config_of_row ~seed ~plan ~plan_name:plan_str row
            in
            let ads = cfg.Pr_serve.Daemon.target_ads in
            if ads <= 0 then
              Printf.printf "skipping row without target_ads\n"
            else if sizes <> [] && not (List.mem ads sizes) then ()
            else begin
              incr compared;
              Printf.printf "re-running size %d (seed %d, plan %s)...\n%!" ads seed
                cfg.Pr_serve.Daemon.plan_name;
              let report = Pr_serve.Daemon.run cfg in
              gate_row
                ~label:(Printf.sprintf "size %d" ads)
                ~spec ~baseline:row
                ~current:(Pr_serve.Daemon.row_json report)
            end)
          rows
      in
      (* parallel_engine baselines: re-run only the rows marked
         [gate = true] (the cheap sizes), at their recorded shard
         count. Event/message counts gate exactly — the determinism
         contract — while throughput is banded and wall clock ignored,
         because the measuring host's core count is in the baseline,
         not reproducible here. *)
      let gate_parallel () =
        let module PB = Pr_campaign.Parallel_bench in
        let seed = Result.value (J.int_member "seed" doc) ~default:42 in
        let protocol = Result.value (J.string_member "protocol" doc) ~default:"ls" in
        let packed =
          match Pr_core.Registry.find_opt protocol with
          | Some p -> p
          | None ->
            Printf.eprintf "prx: baseline names unknown protocol %S\n" protocol;
            exit 2
        in
        let spec = PB.gate_spec ~timing_tolerance:tolerance in
        List.iter
          (fun row ->
            let gated =
              match J.member "gate" row with Some (J.Bool b) -> b | _ -> false
            in
            let ads = Result.value (J.int_member "target_ads" row) ~default:0 in
            let shards = Result.value (J.int_member "shards" row) ~default:1 in
            let max_events =
              Result.value (J.int_member "max_events" row) ~default:1_000_000
            in
            if (not gated) || ads <= 0 then ()
            else if sizes <> [] && not (List.mem ads sizes) then ()
            else begin
              incr compared;
              Printf.printf "re-running %s size %d on %d shard(s) (seed %d)...\n%!"
                protocol ads shards seed;
              let r =
                PB.measure packed ~seed ~target_ads:ads ~shards ~max_events
              in
              gate_row
                ~label:(Printf.sprintf "size %d x%d" ads shards)
                ~spec ~baseline:row ~current:(PB.row_json r)
            end)
          rows
      in
      (match J.member "benchmark" doc with
      | Some (J.String "route_server_serving") -> gate_serve ()
      | Some (J.String "parallel_engine") -> gate_parallel ()
      | Some (J.String other) ->
        Printf.eprintf
          "prx: bench diff gates \"route_server_serving\" or \"parallel_engine\" \
           documents (got %S)\n"
          other;
        exit 2
      | _ ->
        Printf.eprintf "prx: %s: missing \"benchmark\" identity\n" baseline;
        exit 2);
      if !compared = 0 then begin
        Printf.eprintf "prx: no baseline rows matched (checked %d)\n"
          (List.length rows);
        exit 2
      end;
      if !failed > 0 then begin
        Printf.printf "bench diff: FAIL (%d field(s) out of tolerance vs %s)\n"
          !failed baseline;
        exit 1
      end;
      Printf.printf "bench diff: ok (%d row(s) within tolerance of %s)\n" !compared
        baseline
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Re-run the measurements behind a committed benchmark document \
            (BENCH_serve.json sessions, or the gated rows of BENCH_parallel.json) and \
            compare under tolerance bands; exits 1 on regression, 2 when nothing was \
            comparable.")
      Term.(const run $ logs_term $ baseline_arg $ sizes_arg $ tolerance_arg)
  in
  Cmd.group
    (Cmd.info "bench" ~doc:"Benchmark-baseline tooling (see `prx bench diff`).")
    [ diff_cmd ]

let () =
  let info = Cmd.info "prx" ~doc:"Inter-AD policy routing explorer (Breslau & Estrin, SIGCOMM 1990)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            design_space_cmd;
            topology_cmd;
            evaluate_cmd;
            dot_cmd;
            oracle_cmd;
            impact_cmd;
            conformance_cmd;
            sweep_cmd;
            serve_cmd;
            converge_cmd;
            trace_cmd;
            chaos_cmd;
            stats_cmd;
            bench_cmd;
          ]))
